# End-to-end contract of the statsdiff regression sentinel (tools/
# statsdiff.cc): identical runs diff clean, an injected deterministic-counter
# drift fails with a nonzero exit, a real --trace-out file passes
# --validate-trace, and a structurally broken trace fails it.
#
# Invoked as:
#   cmake -DCLI=<corrmine_cli> -DSTATSDIFF=<statsdiff> -DWORKDIR=<dir>
#         -P statsdiff_cli.cmake

execute_process(
  COMMAND ${CLI} generate quest --baskets 2000
          --out ${WORKDIR}/sdiff_fixture.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}")
endif()

# Two runs of the same configuration; the second also records a trace.
execute_process(
  COMMAND ${CLI} mine ${WORKDIR}/sdiff_fixture.txt
          --support-count 100 --cell-fraction 0.26 --max-level 3
          --threads 1 --stats-json ${WORKDIR}/sdiff_a.json
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mine (baseline) failed: ${rc}")
endif()
execute_process(
  COMMAND ${CLI} mine ${WORKDIR}/sdiff_fixture.txt
          --support-count 100 --cell-fraction 0.26 --max-level 3
          --threads 8 --shards 4 --stats-json ${WORKDIR}/sdiff_b.json
          --trace-out ${WORKDIR}/sdiff_trace.json
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mine (traced) failed: ${rc}")
endif()

# 1. Cross-configuration diff must be clean: the deterministic section (and
#    the stable counter families) are contractually invariant across
#    --threads and --shards.
execute_process(
  COMMAND ${STATSDIFF} ${WORKDIR}/sdiff_a.json ${WORKDIR}/sdiff_b.json
          --counters miner.,count_provider.
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "statsdiff reported drift on matching runs "
                      "(rc=${rc}):\n${out}${err}")
endif()

# 2. Injected drift in a deterministic counter must fail. Bump the level-2
#    candidate count by one in a copy of the baseline document.
file(READ ${WORKDIR}/sdiff_a.json doc)
string(REGEX MATCH "\"level\":2,\"possible\":[0-9]+,\"cand\":([0-9]+)"
       matched "${doc}")
if(matched STREQUAL "")
  message(FATAL_ERROR "no level-2 cand counter found in:\n${doc}")
endif()
math(EXPR bumped "${CMAKE_MATCH_1} + 1")
string(REPLACE "\"cand\":${CMAKE_MATCH_1}" "\"cand\":${bumped}"
       drifted "${doc}")
file(WRITE ${WORKDIR}/sdiff_drift.json "${drifted}")
execute_process(
  COMMAND ${STATSDIFF} ${WORKDIR}/sdiff_a.json ${WORKDIR}/sdiff_drift.json
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "statsdiff missed an injected counter drift "
                      "(rc=${rc}):\n${err}")
endif()
string(FIND "${err}" "DRIFT deterministic" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "drift report does not name the deterministic "
                      "section:\n${err}")
endif()

# 3. The recorded trace must satisfy the Chrome-format invariants.
if(NOT EXISTS ${WORKDIR}/sdiff_trace.json)
  message(FATAL_ERROR "--trace-out wrote no file")
endif()
execute_process(
  COMMAND ${STATSDIFF} --validate-trace ${WORKDIR}/sdiff_trace.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace failed validation (rc=${rc}):\n${out}${err}")
endif()

# 4. A corrupted trace — an end event injected with no matching begin —
#    must fail validation.
file(WRITE ${WORKDIR}/sdiff_bad_trace.json
     "{\"traceEvents\":[\n"
     "{\"name\":\"orphan\",\"ph\":\"E\",\"ts\":1.0,\"pid\":0,\"tid\":0}\n"
     "]}\n")
execute_process(
  COMMAND ${STATSDIFF} --validate-trace ${WORKDIR}/sdiff_bad_trace.json
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "statsdiff accepted a corrupted trace (rc=${rc})")
endif()
