#include <gtest/gtest.h>

#include "core/contingency_table.h"
#include "test_util.h"

namespace corrmine {
namespace {

// A tiny database with hand-checkable counts:
//   baskets: {0,1}, {0}, {1}, {0,1}, {}
TransactionDatabase TinyDb() {
  return testing::MakeDatabase(2, {{0, 1}, {0}, {1}, {0, 1}, {}});
}

TEST(IndependenceModelTest, ExpectedValues) {
  // n = 10, O(a) = 4, O(b) = 5 -> E[ab] = 10 * 0.4 * 0.5 = 2.
  IndependenceModel model(10, {4, 5});
  EXPECT_DOUBLE_EQ(model.Expected(0b11), 2.0);
  EXPECT_DOUBLE_EQ(model.Expected(0b01), 10 * 0.4 * 0.5);
  EXPECT_DOUBLE_EQ(model.Expected(0b10), 10 * 0.6 * 0.5);
  EXPECT_DOUBLE_EQ(model.Expected(0b00), 10 * 0.6 * 0.5);
  // Expected values sum to n over all cells.
  double total = 0.0;
  for (uint32_t m = 0; m < 4; ++m) total += model.Expected(m);
  EXPECT_NEAR(total, 10.0, 1e-12);
}

TEST(ContingencyTableTest, DenseCountsMatchHandCount) {
  auto db = TinyDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->n(), 5u);
  EXPECT_EQ(table->Observed(0b11), 2u);  // both
  EXPECT_EQ(table->Observed(0b01), 1u);  // only item 0
  EXPECT_EQ(table->Observed(0b10), 1u);  // only item 1
  EXPECT_EQ(table->Observed(0b00), 1u);  // neither
}

TEST(ContingencyTableTest, SingleItemTable) {
  auto db = TinyDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_cells(), 2u);
  EXPECT_EQ(table->Observed(0b1), 3u);
  EXPECT_EQ(table->Observed(0b0), 2u);
}

TEST(ContingencyTableTest, RejectsBadInputs) {
  auto db = TinyDb();
  ScanCountProvider provider(db);
  EXPECT_TRUE(ContingencyTable::Build(provider, Itemset{})
                  .status()
                  .IsInvalidArgument());
  TransactionDatabase empty(2);
  ScanCountProvider empty_provider(empty);
  EXPECT_TRUE(ContingencyTable::Build(empty_provider, Itemset{0})
                  .status()
                  .IsFailedPrecondition());
}

TEST(ContingencyTableTest, CellsSumToN) {
  auto db = testing::RandomIndependentDatabase(6, 400, 11);
  BitmapCountProvider provider(db);
  for (auto s : {Itemset{0, 1}, Itemset{2, 3, 4}, Itemset{0, 1, 2, 3, 5}}) {
    auto table = ContingencyTable::Build(provider, s);
    ASSERT_TRUE(table.ok());
    uint64_t total = 0;
    for (uint32_t m = 0; m < table->num_cells(); ++m) {
      total += table->Observed(m);
    }
    EXPECT_EQ(total, db.num_baskets()) << s.ToString();
  }
}

TEST(ContingencyTableTest, MarginsRecoverItemCounts) {
  auto db = testing::RandomIndependentDatabase(5, 300, 23);
  BitmapCountProvider provider(db);
  Itemset s{1, 3, 4};
  auto table = ContingencyTable::Build(provider, s);
  ASSERT_TRUE(table.ok());
  // Summing cells where bit j is set reproduces O(i_j).
  for (int j = 0; j < 3; ++j) {
    uint64_t margin = 0;
    for (uint32_t m = 0; m < table->num_cells(); ++m) {
      if ((m >> j) & 1) margin += table->Observed(m);
    }
    EXPECT_EQ(margin, db.ItemCount(s.item(j)));
  }
}

TEST(ContingencyTableTest, CellsWithCountAtLeast) {
  auto db = TinyDb();
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->CellsWithCountAtLeast(0), 4u);
  EXPECT_EQ(table->CellsWithCountAtLeast(1), 4u);
  EXPECT_EQ(table->CellsWithCountAtLeast(2), 1u);
  EXPECT_EQ(table->CellsWithCountAtLeast(3), 0u);
}

// --- Sparse representation ---

TEST(SparseContingencyTest, MatchesDenseOnRandomData) {
  auto db = testing::RandomIndependentDatabase(7, 500, 31);
  BitmapCountProvider provider(db);
  for (auto s : {Itemset{0, 1}, Itemset{1, 2, 3}, Itemset{0, 2, 4, 6}}) {
    auto dense = ContingencyTable::Build(provider, s);
    auto sparse = SparseContingencyTable::Build(db, s);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    uint64_t sparse_total = 0;
    for (const auto& cell : sparse->occupied_cells()) {
      EXPECT_GT(cell.observed, 0u);
      EXPECT_EQ(cell.observed, dense->Observed(cell.mask));
      EXPECT_DOUBLE_EQ(sparse->Expected(cell.mask),
                       dense->Expected(cell.mask));
      sparse_total += cell.observed;
    }
    EXPECT_EQ(sparse_total, db.num_baskets());
  }
}

TEST(SparseContingencyTest, LargeItemsetBeyondDenseCap) {
  // 20 items exceeds the dense cap but works sparsely.
  auto db = testing::RandomIndependentDatabase(20, 100, 5);
  std::vector<ItemId> all;
  for (ItemId i = 0; i < 20; ++i) all.push_back(i);
  Itemset s(all);
  auto sparse = SparseContingencyTable::Build(db, s);
  ASSERT_TRUE(sparse.ok());
  EXPECT_LE(sparse->occupied_cells().size(), 100u);
  EXPECT_DOUBLE_EQ(sparse->TotalCellCount(), 1048576.0);
  BitmapCountProvider provider(db);
  EXPECT_TRUE(
      ContingencyTable::Build(provider, s).status().IsOutOfRange());
}

TEST(SparseContingencyTest, SupportCountsOnlyOccupiedForPositiveThreshold) {
  auto db = TinyDb();
  auto sparse = SparseContingencyTable::Build(db, Itemset{0, 1});
  ASSERT_TRUE(sparse.ok());
  EXPECT_EQ(sparse->CellsWithCountAtLeast(1), 4u);
  EXPECT_EQ(sparse->CellsWithCountAtLeast(2), 1u);
  EXPECT_EQ(sparse->CellsWithCountAtLeast(0), 4u);  // 2^2 cells total.
}

}  // namespace
}  // namespace corrmine
