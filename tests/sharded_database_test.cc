// The partitioned dataset layer: round-robin placement, exact summed
// marginals, Flatten invertibility, and the K-invariance contract — the
// sharded provider must answer every count exactly like a whole-database
// provider, for any shard count and any pool.

#include "itemset/sharded_database.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "io/binary_io.h"
#include "io/sharded_loader.h"
#include "io/transaction_io.h"
#include "itemset/count_provider.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(ShardedDatabaseTest, RoundRobinPlacementAndOriginalOrder) {
  ShardedTransactionDatabase db(/*num_items=*/10, /*num_shards=*/3);
  ASSERT_TRUE(db.AddBasket({0, 1}).ok());   // shard 0, row 0
  ASSERT_TRUE(db.AddBasket({2}).ok());      // shard 1, row 0
  ASSERT_TRUE(db.AddBasket({3, 4}).ok());   // shard 2, row 0
  ASSERT_TRUE(db.AddBasket({5}).ok());      // shard 0, row 1
  EXPECT_EQ(db.num_shards(), 3u);
  EXPECT_EQ(db.num_baskets(), 4u);
  EXPECT_EQ(db.shard(0).num_baskets(), 2u);
  EXPECT_EQ(db.shard(1).num_baskets(), 1u);
  EXPECT_EQ(db.shard(2).num_baskets(), 1u);
  // basket(i) resolves through the round-robin layout to arrival order.
  EXPECT_EQ(db.basket(0), (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(db.basket(1), (std::vector<ItemId>{2}));
  EXPECT_EQ(db.basket(2), (std::vector<ItemId>{3, 4}));
  EXPECT_EQ(db.basket(3), (std::vector<ItemId>{5}));
  EXPECT_EQ(db.ItemCount(0), 1u);
  EXPECT_EQ(db.TotalItemOccurrences(), 6u);
  EXPECT_FALSE(db.AddBasket({10}).ok());  // out of range
}

TEST(ShardedDatabaseTest, ShardCountClampedAndResolved) {
  ShardedTransactionDatabase db(4, 0);
  EXPECT_EQ(db.num_shards(), 1u);  // clamped to >= 1
  EXPECT_EQ(ShardedTransactionDatabase::ResolveShardCount(3), 3u);
  EXPECT_EQ(ShardedTransactionDatabase::ResolveShardCount(-2), 1u);
  EXPECT_GE(ShardedTransactionDatabase::ResolveShardCount(0), 1u);
}

TEST(ShardedDatabaseTest, PartitionAndFlattenAreInverse) {
  auto db = corrmine::testing::RandomIndependentDatabase(30, 400, 13);
  for (size_t shards : {1, 2, 4, 7}) {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Partition(db, shards);
    ASSERT_EQ(sharded.num_baskets(), db.num_baskets());
    EXPECT_EQ(sharded.num_items(), db.num_items());
    for (size_t i = 0; i < db.num_baskets(); ++i) {
      ASSERT_EQ(sharded.basket(i), db.basket(i)) << "basket " << i;
    }
    for (ItemId item = 0; item < db.num_items(); ++item) {
      ASSERT_EQ(sharded.ItemCount(item), db.ItemCount(item))
          << "item " << item;
    }
    TransactionDatabase flat = sharded.Flatten();
    ASSERT_EQ(flat.num_baskets(), db.num_baskets());
    for (size_t i = 0; i < db.num_baskets(); ++i) {
      ASSERT_EQ(flat.basket(i), db.basket(i)) << "basket " << i;
    }
  }
}

TEST(ShardedDatabaseTest, ProviderCountsInvariantAcrossShardAndPool) {
  auto db = corrmine::testing::RandomIndependentDatabase(25, 500, 17);
  BitmapCountProvider reference(db);

  // Every size-1..3 itemset over a subset of the item space.
  std::vector<Itemset> queries;
  for (ItemId a = 0; a < 12; ++a) {
    queries.push_back(Itemset{a});
    for (ItemId b = a + 1; b < 12; ++b) {
      queries.push_back(Itemset{a, b});
      for (ItemId c = b + 1; c < 12; ++c) queries.push_back(Itemset{a, b, c});
    }
  }
  std::vector<uint64_t> expected(queries.size());
  reference.CountAllPresentBatch(queries, expected);

  for (size_t shards : {1, 2, 4, 7}) {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Partition(db, shards);
    ShardedCountProvider provider(sharded);
    EXPECT_EQ(provider.num_baskets(), db.num_baskets());
    EXPECT_EQ(provider.num_shards(), shards);

    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(provider.CountAllPresent(queries[i]), expected[i])
          << "shards " << shards << ", query " << queries[i].ToString();
    }

    std::vector<uint64_t> batch(queries.size());
    provider.CountAllPresentBatch(queries, batch);
    EXPECT_EQ(batch, expected) << "inline batch, shards " << shards;

    ThreadPool pool(3);
    std::fill(batch.begin(), batch.end(), 0);
    provider.CountAllPresentBatch(queries, batch, &pool);
    EXPECT_EQ(batch, expected) << "pooled batch, shards " << shards;
  }
}

TEST(ShardedLoaderTest, TextAndBinaryStreamIntoShards) {
  auto db = corrmine::testing::RandomIndependentDatabase(20, 300, 29);

  std::string text_path = ::testing::TempDir() + "/sharded_loader.txt";
  ASSERT_TRUE(io::WriteTransactionFile(db, text_path).ok());
  std::string bin_path = ::testing::TempDir() + "/sharded_loader.bin";
  ASSERT_TRUE(io::WriteBinaryTransactionFile(db, bin_path).ok());

  for (const std::string& path : {text_path, bin_path}) {
    // The unified monolithic entry point auto-detects both encodings.
    auto mono = io::LoadTransactionFile(path);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    ASSERT_EQ(mono->num_baskets(), db.num_baskets()) << path;

    for (size_t shards : {1, 3, 5}) {
      auto loaded = io::LoadTransactionFileSharded(path, shards);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_EQ(loaded->num_shards(), shards);
      ASSERT_EQ(loaded->num_baskets(), db.num_baskets()) << path;
      EXPECT_EQ(loaded->num_items(), db.num_items()) << path;
      for (size_t i = 0; i < db.num_baskets(); ++i) {
        ASSERT_EQ(loaded->basket(i), db.basket(i))
            << path << " shards " << shards << " basket " << i;
      }
    }
  }
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());

  EXPECT_FALSE(io::LoadTransactionFileSharded("/nonexistent/x.txt", 2).ok());
}

TEST(ShardedLoaderTest, ItemSpaceHintFloorsTextLoads) {
  std::string path = ::testing::TempDir() + "/sharded_loader_hint.txt";
  {
    std::ofstream out(path);
    out << "0 2\n1\n";
  }
  auto plain = io::LoadTransactionFileSharded(path, 2);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->num_items(), 3u);  // max id + 1
  auto hinted = io::LoadTransactionFileSharded(path, 2, /*num_items_hint=*/8);
  ASSERT_TRUE(hinted.ok());
  EXPECT_EQ(hinted->num_items(), 8u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace corrmine
