#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/binary_io.h"
#include "io/transaction_io.h"
#include "test_util.h"

namespace corrmine::io {
namespace {

TEST(BinaryIoTest, EncodeDecodeRoundTrip) {
  auto db = corrmine::testing::RandomIndependentDatabase(20, 500, 9);
  std::string bytes = EncodeBinaryTransactions(db);
  auto decoded = DecodeBinaryTransactions(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_baskets(), db.num_baskets());
  EXPECT_EQ(decoded->num_items(), db.num_items());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    EXPECT_EQ(decoded->basket(row), db.basket(row)) << "row " << row;
  }
}

TEST(BinaryIoTest, EmptyBasketsAndEmptyDatabase) {
  TransactionDatabase db(5);
  ASSERT_TRUE(db.AddBasket({}).ok());
  ASSERT_TRUE(db.AddBasket({4}).ok());
  ASSERT_TRUE(db.AddBasket({}).ok());
  auto decoded = DecodeBinaryTransactions(EncodeBinaryTransactions(db));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_baskets(), 3u);
  EXPECT_TRUE(decoded->basket(0).empty());
  EXPECT_EQ(decoded->basket(1), (std::vector<ItemId>{4}));

  TransactionDatabase empty(7);
  auto decoded_empty =
      DecodeBinaryTransactions(EncodeBinaryTransactions(empty));
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_EQ(decoded_empty->num_baskets(), 0u);
  EXPECT_EQ(decoded_empty->num_items(), 7u);
}

TEST(BinaryIoTest, CompactVersusText) {
  auto db = corrmine::testing::RandomIndependentDatabase(1000, 300, 3);
  std::string binary = EncodeBinaryTransactions(db);
  // Text encoding size estimate: write to a string via the text writer's
  // format (ids + separators ~ 4+ bytes per occurrence on this id range).
  size_t text_estimate = 0;
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    for (ItemId item : db.basket(row)) {
      text_estimate += std::to_string(item).size() + 1;
    }
    ++text_estimate;
  }
  EXPECT_LT(binary.size(), text_estimate / 2)
      << "binary " << binary.size() << " vs text ~" << text_estimate;
}

TEST(BinaryIoTest, FileRoundTripAndSniffing) {
  auto db = corrmine::testing::RandomIndependentDatabase(10, 100, 5);
  std::string path = ::testing::TempDir() + "/corrmine_binary_test.bin";
  ASSERT_TRUE(WriteBinaryTransactionFile(db, path).ok());
  EXPECT_TRUE(LooksLikeBinaryTransactionFile(path));
  auto loaded = ReadBinaryTransactionFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_baskets(), db.num_baskets());
  std::remove(path.c_str());

  std::string text_path = ::testing::TempDir() + "/corrmine_text_test.txt";
  ASSERT_TRUE(WriteTransactionFile(db, text_path).ok());
  EXPECT_FALSE(LooksLikeBinaryTransactionFile(text_path));
  std::remove(text_path.c_str());
  EXPECT_FALSE(LooksLikeBinaryTransactionFile("/nonexistent/file.bin"));
}

TEST(BinaryIoTest, CorruptionDetected) {
  auto db = corrmine::testing::RandomIndependentDatabase(10, 50, 1);
  std::string bytes = EncodeBinaryTransactions(db);
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_TRUE(DecodeBinaryTransactions(bad_magic).status().IsCorruption());
  // Truncation at any point must error, not crash or mis-decode silently.
  for (size_t cut : {size_t{2}, size_t{5}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto decoded = DecodeBinaryTransactions(bytes.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
  // Trailing garbage.
  EXPECT_TRUE(
      DecodeBinaryTransactions(bytes + "x").status().IsCorruption());
}

TEST(BinaryIoTest, MaxItemIdsRoundTrip) {
  // Item ids at the top of a large id space stress the varint coder's
  // multi-byte path (deltas spanning several LEB128 groups).
  const ItemId num_items = ItemId{1} << 20;
  TransactionDatabase db(num_items);
  ASSERT_TRUE(db.AddBasket({0, num_items - 1}).ok());
  ASSERT_TRUE(db.AddBasket({num_items - 1}).ok());
  ASSERT_TRUE(db.AddBasket({}).ok());
  ASSERT_TRUE(db.AddBasket({num_items / 2, num_items - 2, num_items - 1})
                  .ok());
  auto decoded = DecodeBinaryTransactions(EncodeBinaryTransactions(db));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_items(), num_items);
  ASSERT_EQ(decoded->num_baskets(), db.num_baskets());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    EXPECT_EQ(decoded->basket(row), db.basket(row)) << "row " << row;
  }
}

TEST(BinaryIoTest, TruncatedFileReturnsStatusNotCrash) {
  auto db = corrmine::testing::RandomIndependentDatabase(15, 200, 23);
  std::string bytes = EncodeBinaryTransactions(db);
  std::string path = ::testing::TempDir() + "/corrmine_truncated.bin";
  for (size_t cut : {size_t{1}, size_t{3}, bytes.size() / 3,
                     bytes.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary);
      out << bytes.substr(0, cut);
    }
    auto loaded = ReadBinaryTransactionFile(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut;
    EXPECT_TRUE(loaded.status().IsCorruption()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, StreamingDecodeMatchesMaterialized) {
  auto db = corrmine::testing::RandomIndependentDatabase(20, 300, 31);
  std::string bytes = EncodeBinaryTransactions(db);

  ItemId num_items = 0;
  std::vector<std::vector<ItemId>> streamed;
  auto status = DecodeBinaryTransactionsInto(
      bytes, &num_items, [&](std::vector<ItemId> basket) -> Status {
        streamed.push_back(std::move(basket));
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(num_items, db.num_items());
  ASSERT_EQ(streamed.size(), db.num_baskets());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    EXPECT_EQ(streamed[row], db.basket(row)) << "row " << row;
  }

  // A sink error aborts the decode and propagates unchanged.
  size_t seen = 0;
  auto aborted = DecodeBinaryTransactionsInto(
      bytes, &num_items, [&](std::vector<ItemId>) -> Status {
        if (++seen == 3) return Status::Internal("sink full");
        return Status::OK();
      });
  EXPECT_FALSE(aborted.ok());
  EXPECT_EQ(seen, 3u);
}

TEST(BinaryIoTest, RejectsOutOfRangeItems) {
  // Hand-craft: magic, num_items=2, num_baskets=1, size=1, delta=7 (>= 2).
  std::string bytes = "CMB1";
  bytes += static_cast<char>(2);
  bytes += static_cast<char>(1);
  bytes += static_cast<char>(1);
  bytes += static_cast<char>(7);
  EXPECT_TRUE(DecodeBinaryTransactions(bytes).status().IsCorruption());
}

}  // namespace
}  // namespace corrmine::io
