#include <cstdio>

#include <gtest/gtest.h>

#include "io/binary_io.h"
#include "io/transaction_io.h"
#include "test_util.h"

namespace corrmine::io {
namespace {

TEST(BinaryIoTest, EncodeDecodeRoundTrip) {
  auto db = corrmine::testing::RandomIndependentDatabase(20, 500, 9);
  std::string bytes = EncodeBinaryTransactions(db);
  auto decoded = DecodeBinaryTransactions(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_baskets(), db.num_baskets());
  EXPECT_EQ(decoded->num_items(), db.num_items());
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    EXPECT_EQ(decoded->basket(row), db.basket(row)) << "row " << row;
  }
}

TEST(BinaryIoTest, EmptyBasketsAndEmptyDatabase) {
  TransactionDatabase db(5);
  ASSERT_TRUE(db.AddBasket({}).ok());
  ASSERT_TRUE(db.AddBasket({4}).ok());
  ASSERT_TRUE(db.AddBasket({}).ok());
  auto decoded = DecodeBinaryTransactions(EncodeBinaryTransactions(db));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_baskets(), 3u);
  EXPECT_TRUE(decoded->basket(0).empty());
  EXPECT_EQ(decoded->basket(1), (std::vector<ItemId>{4}));

  TransactionDatabase empty(7);
  auto decoded_empty =
      DecodeBinaryTransactions(EncodeBinaryTransactions(empty));
  ASSERT_TRUE(decoded_empty.ok());
  EXPECT_EQ(decoded_empty->num_baskets(), 0u);
  EXPECT_EQ(decoded_empty->num_items(), 7u);
}

TEST(BinaryIoTest, CompactVersusText) {
  auto db = corrmine::testing::RandomIndependentDatabase(1000, 300, 3);
  std::string binary = EncodeBinaryTransactions(db);
  // Text encoding size estimate: write to a string via the text writer's
  // format (ids + separators ~ 4+ bytes per occurrence on this id range).
  size_t text_estimate = 0;
  for (size_t row = 0; row < db.num_baskets(); ++row) {
    for (ItemId item : db.basket(row)) {
      text_estimate += std::to_string(item).size() + 1;
    }
    ++text_estimate;
  }
  EXPECT_LT(binary.size(), text_estimate / 2)
      << "binary " << binary.size() << " vs text ~" << text_estimate;
}

TEST(BinaryIoTest, FileRoundTripAndSniffing) {
  auto db = corrmine::testing::RandomIndependentDatabase(10, 100, 5);
  std::string path = ::testing::TempDir() + "/corrmine_binary_test.bin";
  ASSERT_TRUE(WriteBinaryTransactionFile(db, path).ok());
  EXPECT_TRUE(LooksLikeBinaryTransactionFile(path));
  auto loaded = ReadBinaryTransactionFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_baskets(), db.num_baskets());
  std::remove(path.c_str());

  std::string text_path = ::testing::TempDir() + "/corrmine_text_test.txt";
  ASSERT_TRUE(WriteTransactionFile(db, text_path).ok());
  EXPECT_FALSE(LooksLikeBinaryTransactionFile(text_path));
  std::remove(text_path.c_str());
  EXPECT_FALSE(LooksLikeBinaryTransactionFile("/nonexistent/file.bin"));
}

TEST(BinaryIoTest, CorruptionDetected) {
  auto db = corrmine::testing::RandomIndependentDatabase(10, 50, 1);
  std::string bytes = EncodeBinaryTransactions(db);
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_TRUE(DecodeBinaryTransactions(bad_magic).status().IsCorruption());
  // Truncation at any point must error, not crash or mis-decode silently.
  for (size_t cut : {size_t{2}, size_t{5}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto decoded = DecodeBinaryTransactions(bytes.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
  // Trailing garbage.
  EXPECT_TRUE(
      DecodeBinaryTransactions(bytes + "x").status().IsCorruption());
}

TEST(BinaryIoTest, RejectsOutOfRangeItems) {
  // Hand-craft: magic, num_items=2, num_baskets=1, size=1, delta=7 (>= 2).
  std::string bytes = "CMB1";
  bytes += static_cast<char>(2);
  bytes += static_cast<char>(1);
  bytes += static_cast<char>(1);
  bytes += static_cast<char>(7);
  EXPECT_TRUE(DecodeBinaryTransactions(bytes).status().IsCorruption());
}

}  // namespace
}  // namespace corrmine::io
