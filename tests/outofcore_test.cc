// Out-of-core mining acceptance: the two-pass partition miner must produce
// byte-identical results to the in-memory miner on every dataset where both
// run, across thread counts and partition-forcing memory budgets.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/session.h"
#include "datagen/quest_generator.h"
#include "io/binary_io.h"
#include "io/transaction_io.h"
#include "mining/partition.h"
#include "test_util.h"

namespace corrmine {
namespace {

/// Stable fingerprint of everything a mining run answers: rules with their
/// statistics, the per-level table, and the frontier.
std::string Fingerprint(const MiningResult& result) {
  std::ostringstream out;
  out.precision(17);
  for (const CorrelationRule& rule : result.significant) {
    out << rule.itemset.ToString() << '|' << rule.chi2.statistic << '|'
        << rule.chi2.p_value << '|' << rule.major_dependence.mask << '|'
        << rule.major_dependence.interest << '\n';
  }
  for (const LevelStats& level : result.levels) {
    out << 'L' << level.level << ':' << level.possible_itemsets << ','
        << level.candidates << ',' << level.discards << ','
        << level.significant << ',' << level.not_significant << ','
        << level.chi2_tests << ',' << level.masked_cells << '\n';
  }
  for (const Itemset& f : result.frontier) out << 'F' << f.ToString() << '\n';
  return out.str();
}

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("corrmine_ooc_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(OutOfCoreTest, MatchesInMemoryAcrossThreadsAndBudgets) {
  auto db_or = datagen::GenerateQuestData({.num_transactions = 6000,
                                           .num_items = 300,
                                           .avg_transaction_size = 12.0,
                                           .seed = 2024});
  ASSERT_TRUE(db_or.ok());
  const std::string input = (dir_ / "quest.bin").string();
  ASSERT_TRUE(io::WriteBinaryTransactionFile(*db_or, input).ok());

  MinerOptions miner;
  // 5% support over the ~4% mean item frequency: pattern items (which run
  // hotter than the mean) survive, the independent tail is pruned, and
  // the 4-config sweep below stays fast.
  miner.support.min_count = 300;
  miner.support.cell_fraction = 0.26;
  miner.max_level = 3;
  miner.keep_frontier = true;

  SessionOptions session_options;
  auto session_or = MiningSession::Open(input, session_options);
  ASSERT_TRUE(session_or.ok());
  auto expected_or = session_or->Mine(miner);
  ASSERT_TRUE(expected_or.ok());
  const std::string expected = Fingerprint(*expected_or);
  ASSERT_FALSE(expected_or->significant.empty());

  // Budgets chosen so the spill pass produces one partition (the min 1 MiB
  // partition floor swallows this dataset) and, with the tiny budget,
  // multiple partitions via a sub-floor override is impossible — so force
  // partitioning through the spill threshold by mining a dataset bigger
  // than the floor below. Deterministic stats (partition count, candidate
  // union size) must be a function of the budget alone — identical at any
  // thread count, since recordings merge in partition order.
  for (const uint64_t budget : {uint64_t{8} << 20, uint64_t{512} << 20}) {
    OutOfCoreStats baseline;
    bool have_baseline = false;
    for (const int threads : {1, 2, 8}) {
      OutOfCoreMinerOptions options;
      options.miner = miner;
      options.miner.num_threads = threads;
      options.memory_budget_bytes = budget;
      options.spill_dir = (dir_ / "spill").string();
      OutOfCoreStats stats;
      auto result_or = MineCorrelationsOutOfCore(input, options, &stats);
      ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
      EXPECT_EQ(Fingerprint(*result_or), expected)
          << "threads " << threads << ", budget " << budget;
      EXPECT_EQ(stats.num_baskets, 6000u);
      EXPECT_GE(stats.partitions, 1u);
      EXPECT_GT(stats.candidate_queries, 0u);
      EXPECT_GE(stats.admitted, 1);
      if (!have_baseline) {
        baseline = stats;
        have_baseline = true;
      } else {
        EXPECT_EQ(stats.partitions, baseline.partitions)
            << "threads " << threads << ", budget " << budget;
        EXPECT_EQ(stats.candidate_queries, baseline.candidate_queries)
            << "threads " << threads << ", budget " << budget;
        EXPECT_EQ(stats.memo_misses, baseline.memo_misses)
            << "threads " << threads << ", budget " << budget;
      }
      // Spill files are cleaned up unless keep_spill is set.
      EXPECT_FALSE(std::filesystem::exists(options.spill_dir));
    }
  }
}

TEST_F(OutOfCoreTest, PartitionBudgetKnob) {
  auto db_or = datagen::GenerateQuestData({.num_transactions = 6000,
                                           .num_items = 300,
                                           .avg_transaction_size = 12.0,
                                           .seed = 2024});
  ASSERT_TRUE(db_or.ok());
  const std::string input = (dir_ / "quest.bin").string();
  ASSERT_TRUE(io::WriteBinaryTransactionFile(*db_or, input).ok());

  MinerOptions miner;
  miner.support.min_count = 300;
  miner.support.cell_fraction = 0.26;
  miner.max_level = 3;

  auto session_or = MiningSession::Open(input, {});
  ASSERT_TRUE(session_or.ok());
  auto expected_or = session_or->Mine(miner);
  ASSERT_TRUE(expected_or.ok());

  // An explicit sub-floor partition budget is honored verbatim: ~290 KB
  // of row bytes against a 64 KiB partition budget forces several
  // partitions even under a roomy memory budget — and the result is
  // still byte-identical.
  OutOfCoreMinerOptions options;
  options.miner = miner;
  options.miner.num_threads = 2;
  options.memory_budget_bytes = uint64_t{64} << 20;
  options.partition_budget_bytes = uint64_t{64} << 10;
  options.spill_dir = (dir_ / "spill_tiny").string();
  OutOfCoreStats stats;
  auto result_or = MineCorrelationsOutOfCore(input, options, &stats);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  EXPECT_EQ(Fingerprint(*result_or), Fingerprint(*expected_or));
  EXPECT_GE(stats.partitions, 3u);

  // partition budget == memory budget is the forced-serial knob: the
  // admission controller must degrade to one partition in flight.
  options.partition_budget_bytes = options.memory_budget_bytes;
  options.spill_dir = (dir_ / "spill_serial").string();
  OutOfCoreStats serial_stats;
  auto serial_or = MineCorrelationsOutOfCore(input, options, &serial_stats);
  ASSERT_TRUE(serial_or.ok()) << serial_or.status().ToString();
  EXPECT_EQ(serial_stats.admitted, 1);
  EXPECT_EQ(Fingerprint(*serial_or), Fingerprint(*expected_or));

  // A partition budget above the memory budget is a contradiction.
  options.partition_budget_bytes = options.memory_budget_bytes + 1;
  EXPECT_FALSE(MineCorrelationsOutOfCore(input, options).ok());
}

TEST_F(OutOfCoreTest, FailedRunLeavesSpillDirEmpty) {
  // A valid segment followed by a garbage tail: the spill pass closes
  // several partitions (tiny explicit partition budget), submits their
  // mines, then hits the stream error — the guard must still remove every
  // spilled file and the directory itself.
  auto db_or = datagen::GenerateQuestData({.num_transactions = 6000,
                                           .num_items = 300,
                                           .avg_transaction_size = 12.0,
                                           .seed = 11});
  ASSERT_TRUE(db_or.ok());
  const std::string input = (dir_ / "truncated.bin").string();
  {
    std::ofstream out(input, std::ios::binary);
    const std::string encoded = io::EncodeBinaryTransactions(*db_or);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    const std::string garbage = "CMB1\xff\xff\xff\xff\xff\xff\xff\xff";
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }

  OutOfCoreMinerOptions options;
  options.miner.support.min_count = 300;
  options.miner.support.cell_fraction = 0.26;
  options.miner.max_level = 3;
  options.miner.num_threads = 2;
  options.memory_budget_bytes = uint64_t{64} << 20;
  options.partition_budget_bytes = uint64_t{64} << 10;
  options.spill_dir = (dir_ / "spill_failed").string();
  auto result_or = MineCorrelationsOutOfCore(input, options);
  EXPECT_FALSE(result_or.ok());
  EXPECT_FALSE(std::filesystem::exists(options.spill_dir))
      << "failed run left spill files behind";

  // keep_spill opts out of the cleanup even on error, for postmortems.
  options.keep_spill = true;
  options.spill_dir = (dir_ / "spill_kept").string();
  EXPECT_FALSE(MineCorrelationsOutOfCore(input, options).ok());
  ASSERT_TRUE(std::filesystem::exists(options.spill_dir));
  size_t kept = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.spill_dir)) {
    (void)entry;
    ++kept;
  }
  EXPECT_GE(kept, 2u) << "expected several closed partitions before the "
                         "stream error";
}

TEST_F(OutOfCoreTest, MultiplePartitionsStayExact) {
  // ~14000 baskets x ~18 items x 4 bytes = ~1 MiB of row bytes; an 8 MiB
  // budget (partition floor max(8M/6, 1MiB) = ~1.4 MiB) still fits in one
  // partition, so build a bigger dataset and use the floor: 60k baskets
  // ~ 4.3 MiB of rows over the 1.4 MiB threshold => >= 3 partitions.
  // 870 items keeps mean item frequency (~2%) under the 3% support floor
  // so the lattice stays small; the point of this fixture is partition
  // count, which row bytes (60k x ~18 x 4B ~ 4.3 MiB of rows vs the
  // ~1.4 MiB partition floor) already guarantees.
  auto db_or = datagen::GenerateQuestData({.num_transactions = 60000,
                                           .num_items = 870,
                                           .avg_transaction_size = 18.0,
                                           .seed = 7});
  ASSERT_TRUE(db_or.ok());
  const std::string input = (dir_ / "quest_big.bin").string();
  ASSERT_TRUE(io::WriteBinaryTransactionFile(*db_or, input).ok());

  MinerOptions miner;
  miner.support.min_count = 1800;
  miner.support.cell_fraction = 0.26;
  miner.max_level = 3;

  auto session_or = MiningSession::Open(input, {});
  ASSERT_TRUE(session_or.ok());
  auto expected_or = session_or->Mine(miner);
  ASSERT_TRUE(expected_or.ok());

  OutOfCoreMinerOptions options;
  options.miner = miner;
  options.miner.num_threads = 2;
  MetricsRegistry registry;
  options.miner.metrics = &registry;
  options.memory_budget_bytes = uint64_t{8} << 20;
  options.spill_dir = (dir_ / "spill").string();
  options.keep_spill = true;
  OutOfCoreStats stats;
  auto result_or = MineCorrelationsOutOfCore(input, options, &stats);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  EXPECT_EQ(Fingerprint(*result_or), Fingerprint(*expected_or));
  EXPECT_GE(stats.partitions, 2u) << "dataset did not force partitioning";
  EXPECT_GT(stats.spilled_payload_bytes, 0u);
  // Peak-RSS gauges land at every pass boundary so an operator can see
  // which phase of a spilling run owned the memory high-water mark.
  if (kMetricsEnabled) {
    EXPECT_GT(registry.GetGauge("mem.peak_rss_spill_bytes")->Value(), 0);
    EXPECT_GT(registry.GetGauge("mem.peak_rss_pass1_bytes")->Value(), 0);
    EXPECT_GT(registry.GetGauge("mem.peak_rss_pass2_bytes")->Value(), 0);
    // RSS is monotone over the run, so each boundary reading dominates
    // the one before it.
    EXPECT_GE(registry.GetGauge("mem.peak_rss_pass1_bytes")->Value(),
              registry.GetGauge("mem.peak_rss_spill_bytes")->Value());
    EXPECT_GE(registry.GetGauge("mem.peak_rss_pass2_bytes")->Value(),
              registry.GetGauge("mem.peak_rss_pass1_bytes")->Value());
  }
  // keep_spill leaves the CCS1 partitions on disk.
  size_t spill_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.spill_dir)) {
    (void)entry;
    ++spill_files;
  }
  EXPECT_EQ(spill_files, stats.partitions);
}

TEST_F(OutOfCoreTest, TextInputAndAppendedBinarySegments) {
  // Text input: streamed line-by-line; num_items = max id + 1.
  const std::string text_path = (dir_ / "tiny.txt").string();
  {
    std::ofstream out(text_path);
    out << "# comment\n0 1 2\n1 2\n0 2\n2 3\n0 1\n1 2 3\n";
  }
  MinerOptions miner;
  miner.support.min_count = 1;
  auto session_or = MiningSession::Open(text_path, {});
  ASSERT_TRUE(session_or.ok());
  auto expected_or = session_or->Mine(miner);
  ASSERT_TRUE(expected_or.ok());
  OutOfCoreMinerOptions options;
  options.miner = miner;
  options.spill_dir = (dir_ / "spill_text").string();
  OutOfCoreStats stats;
  auto result_or = MineCorrelationsOutOfCore(text_path, options, &stats);
  ASSERT_TRUE(result_or.ok()) << result_or.status().ToString();
  EXPECT_EQ(Fingerprint(*result_or), Fingerprint(*expected_or));
  EXPECT_EQ(stats.num_items, 4u);

  // Appended multi-segment binary (ingest --append layout): the stream
  // reader must decode segment-at-a-time and honor the max header space.
  auto base_or = datagen::GenerateQuestData({.num_transactions = 800,
                                             .num_items = 120,
                                             .avg_transaction_size = 8.0,
                                             .seed = 3});
  auto delta_or = datagen::GenerateQuestData({.num_transactions = 500,
                                              .num_items = 120,
                                              .avg_transaction_size = 8.0,
                                              .seed = 4});
  ASSERT_TRUE(base_or.ok());
  ASSERT_TRUE(delta_or.ok());
  const std::string chunked = (dir_ / "chunked.bin").string();
  {
    std::ofstream out(chunked, std::ios::binary);
    const std::string a = io::EncodeBinaryTransactions(*base_or);
    const std::string b = io::EncodeBinaryTransactions(*delta_or);
    out.write(a.data(), static_cast<std::streamsize>(a.size()));
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  }
  MinerOptions chunk_miner;
  chunk_miner.support.min_count = 25;
  chunk_miner.max_level = 3;
  auto chunk_session_or = MiningSession::Open(chunked, {});
  ASSERT_TRUE(chunk_session_or.ok());
  auto chunk_expected_or = chunk_session_or->Mine(chunk_miner);
  ASSERT_TRUE(chunk_expected_or.ok());
  OutOfCoreMinerOptions chunk_options;
  chunk_options.miner = chunk_miner;
  chunk_options.spill_dir = (dir_ / "spill_chunk").string();
  OutOfCoreStats chunk_stats;
  auto chunk_result_or =
      MineCorrelationsOutOfCore(chunked, chunk_options, &chunk_stats);
  ASSERT_TRUE(chunk_result_or.ok()) << chunk_result_or.status().ToString();
  EXPECT_EQ(Fingerprint(*chunk_result_or), Fingerprint(*chunk_expected_or));
  EXPECT_EQ(chunk_stats.num_baskets, 1300u);
}

TEST_F(OutOfCoreTest, ErrorPaths) {
  OutOfCoreMinerOptions options;
  options.spill_dir = (dir_ / "spill_err").string();
  EXPECT_FALSE(
      MineCorrelationsOutOfCore((dir_ / "missing.bin").string(), options)
          .ok());
  options.memory_budget_bytes = 0;
  EXPECT_FALSE(
      MineCorrelationsOutOfCore((dir_ / "missing.bin").string(), options)
          .ok());
}

}  // namespace
}  // namespace corrmine
