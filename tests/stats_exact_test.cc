#include <cmath>

#include <gtest/gtest.h>

#include "stats/categorical_table.h"
#include "stats/chi_squared_distribution.h"
#include "stats/fisher_exact.h"

namespace corrmine::stats {
namespace {

TEST(FisherExactTest, TeaTastingTable) {
  // Fisher's classic lady-tasting-tea design: 3/1 vs 1/3 with fixed margins.
  TwoByTwoCounts t{3, 1, 1, 3};
  auto p = FisherExactTwoSided(t);
  ASSERT_TRUE(p.ok());
  // Enumerable by hand: p = 0.4857142857...
  EXPECT_NEAR(*p, 0.4857142857142857, 1e-10);
  auto greater = FisherExactGreater(t);
  ASSERT_TRUE(greater.ok());
  EXPECT_NEAR(*greater, 0.24285714285714285, 1e-10);
}

TEST(FisherExactTest, PerfectAssociationSmallTable) {
  TwoByTwoCounts t{5, 0, 0, 5};
  auto p = FisherExactTwoSided(t);
  ASSERT_TRUE(p.ok());
  // 2 * C(10,5)^{-1} * ... : the two extreme tables each have prob 1/252.
  EXPECT_NEAR(*p, 2.0 / 252.0, 1e-10);
}

TEST(FisherExactTest, IndependentTableHasLargePValue) {
  TwoByTwoCounts t{20, 20, 20, 20};
  auto p = FisherExactTwoSided(t);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(*p, 0.99);
}

TEST(FisherExactTest, PointProbabilitiesSumToOne) {
  // Sum of hypergeometric probabilities over all feasible tables = 1.
  uint64_t row1 = 7, row2 = 5, col1 = 6;
  double total = 0.0;
  for (uint64_t a = 1; a <= 6; ++a) {  // a_min = col1 - row2 = 1.
    TwoByTwoCounts t{a, row1 - a, col1 - a, row2 - (col1 - a)};
    total += HypergeometricTableProbability(t);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(FisherExactTest, AgreesWithChiSquaredAsymptotically) {
  // Large balanced table with a clear effect: both tests reject crisply.
  TwoByTwoCounts t{700, 300, 300, 700};
  auto fisher = FisherExactTwoSided(t);
  ASSERT_TRUE(fisher.ok());
  EXPECT_LT(*fisher, 1e-10);
}

TEST(FisherExactTest, RejectsEmptyAndHugeTables) {
  EXPECT_FALSE(FisherExactTwoSided(TwoByTwoCounts{0, 0, 0, 0}).ok());
  TwoByTwoCounts huge{2000000, 1, 1, 1};
  EXPECT_TRUE(FisherExactTwoSided(huge).status().IsOutOfRange());
}

// --- Categorical (r x c) tables ---

TEST(CategoricalTableTest, CreateValidation) {
  EXPECT_FALSE(CategoricalTable::Create(1, 3).ok());
  EXPECT_FALSE(CategoricalTable::Create(2, 1).ok());
  EXPECT_TRUE(CategoricalTable::Create(2, 2).ok());
}

TEST(CategoricalTableTest, MarginsAndExpectation) {
  auto table = CategoricalTable::Create(2, 3);
  ASSERT_TRUE(table.ok());
  // Rows: [10 20 30], [20 40 60] — perfectly proportional.
  int values[2][3] = {{10, 20, 30}, {20, 40, 60}};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      table->set_count(r, c, values[r][c]);
    }
  }
  EXPECT_EQ(table->RowTotal(0), 60u);
  EXPECT_EQ(table->ColTotal(2), 90u);
  EXPECT_EQ(table->GrandTotal(), 180u);
  EXPECT_NEAR(table->Expected(0, 0), 60.0 * 30.0 / 180.0, 1e-12);

  auto chi2 = table->ChiSquared();
  ASSERT_TRUE(chi2.ok());
  EXPECT_NEAR(*chi2, 0.0, 1e-12);  // Exactly independent.
  EXPECT_EQ(table->DegreesOfFreedom(), 2);
  auto p = table->PValue();
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, 1e-12);
}

TEST(CategoricalTableTest, KnownChiSquaredValue) {
  // 2x2 with counts [[10, 20], [30, 40]]: chi2 = 100*(10*40-20*30)^2 /
  // (30*70*40*60) = 0.7936...
  auto table = CategoricalTable::Create(2, 2);
  ASSERT_TRUE(table.ok());
  table->set_count(0, 0, 10);
  table->set_count(0, 1, 20);
  table->set_count(1, 0, 30);
  table->set_count(1, 1, 40);
  auto chi2 = table->ChiSquared();
  ASSERT_TRUE(chi2.ok());
  double expected = 100.0 * std::pow(10.0 * 40 - 20.0 * 30, 2) /
                    (30.0 * 70.0 * 40.0 * 60.0);
  EXPECT_NEAR(*chi2, expected, 1e-10);
}

TEST(CategoricalTableTest, InterestMatchesObservedOverExpected) {
  auto table = CategoricalTable::Create(2, 2);
  ASSERT_TRUE(table.ok());
  table->set_count(0, 0, 30);
  table->set_count(0, 1, 10);
  table->set_count(1, 0, 10);
  table->set_count(1, 1, 30);
  EXPECT_NEAR(table->Interest(0, 0), 30.0 / (40.0 * 40.0 / 80.0), 1e-12);
}

TEST(CategoricalTableTest, CramersVPerfectAssociation) {
  auto table = CategoricalTable::Create(2, 2);
  ASSERT_TRUE(table.ok());
  table->set_count(0, 0, 50);
  table->set_count(0, 1, 0);
  table->set_count(1, 0, 0);
  table->set_count(1, 1, 50);
  auto v = table->CramersV();
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 1.0, 1e-12);
}

TEST(CategoricalTableTest, ErrorsOnDegenerateMargins) {
  auto table = CategoricalTable::Create(2, 2);
  ASSERT_TRUE(table.ok());
  table->set_count(0, 0, 5);
  table->set_count(0, 1, 5);
  // Row 1 all zero.
  EXPECT_TRUE(table->ChiSquared().status().IsFailedPrecondition());
}

}  // namespace
}  // namespace corrmine::stats
