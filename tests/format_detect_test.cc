#include "io/format_detect.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/binary_io.h"
#include "io/transaction_io.h"
#include "test_util.h"

namespace corrmine::io {
namespace {

std::string WriteTemp(const std::string& name, const std::string& bytes) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << bytes;
  return path;
}

TEST(FormatDetectTest, ClassifiesHeads) {
  EXPECT_EQ(DetectTransactionFormat("CMB1\x05\x02"),
            TransactionFileFormat::kBinary);
  EXPECT_EQ(DetectTransactionFormat("1 2 3\n4 5\n"),
            TransactionFileFormat::kText);
  EXPECT_EQ(DetectTransactionFormat("# comment\n1 2\n"),
            TransactionFileFormat::kText);
  // Anything shorter than the magic is text by definition — a valid binary
  // file always carries the full 4-byte magic.
  EXPECT_EQ(DetectTransactionFormat(""), TransactionFileFormat::kText);
  EXPECT_EQ(DetectTransactionFormat("CMB"), TransactionFileFormat::kText);
  // Near-misses (wrong version byte) are text, not binary.
  EXPECT_EQ(DetectTransactionFormat("CMB2garbage"),
            TransactionFileFormat::kText);
}

TEST(FormatDetectTest, ClassifiesFiles) {
  auto db = corrmine::testing::RandomIndependentDatabase(10, 50, 11);
  std::string bin_path = WriteTemp("format_detect.bin",
                                   EncodeBinaryTransactions(db));
  auto bin = DetectTransactionFileFormat(bin_path);
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  EXPECT_EQ(*bin, TransactionFileFormat::kBinary);
  std::remove(bin_path.c_str());

  std::string text_path = WriteTemp("format_detect.txt", "0 1 2\n3 4\n");
  auto text = DetectTransactionFileFormat(text_path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, TransactionFileFormat::kText);
  std::remove(text_path.c_str());

  // An empty file is text (the text reader yields zero baskets).
  std::string empty_path = WriteTemp("format_detect_empty.txt", "");
  auto empty = DetectTransactionFileFormat(empty_path);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, TransactionFileFormat::kText);
  std::remove(empty_path.c_str());

  auto missing = DetectTransactionFileFormat("/nonexistent/file.bin");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsIOError());
}

TEST(FormatDetectTest, SniffAgreesWithBinaryWriter) {
  // The writer and the sniffer must share one magic: a written binary file
  // is always detected as binary, and LooksLikeBinaryTransactionFile (the
  // legacy entry point) must agree with the shared helper.
  auto db = corrmine::testing::RandomIndependentDatabase(5, 20, 3);
  std::string path = ::testing::TempDir() + "/format_detect_agree.bin";
  ASSERT_TRUE(WriteBinaryTransactionFile(db, path).ok());
  auto detected = DetectTransactionFileFormat(path);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(*detected, TransactionFileFormat::kBinary);
  EXPECT_TRUE(LooksLikeBinaryTransactionFile(path));
  std::remove(path.c_str());
}

TEST(FormatDetectTest, FormatNames) {
  EXPECT_STREQ(TransactionFileFormatName(TransactionFileFormat::kBinary),
               "binary");
  EXPECT_STREQ(TransactionFileFormatName(TransactionFileFormat::kText),
               "text");
}

}  // namespace
}  // namespace corrmine::io
