#include <gtest/gtest.h>

#include "common/flags.h"

namespace corrmine {
namespace {

StatusOr<FlagParser> ParseArgs(std::vector<const char*> args) {
  return FlagParser::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, KeyEqualsValue) {
  auto flags = ParseArgs({"--alpha=0.95", "--name=census"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("name", ""), "census");
  auto alpha = flags->GetDouble("alpha", 0.0);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.95);
}

TEST(FlagParserTest, KeySpaceValue) {
  auto flags = ParseArgs({"--count", "42", "file.txt"});
  ASSERT_TRUE(flags.ok());
  auto count = flags->GetUint64("count", 0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 42u);
  ASSERT_EQ(flags->positional().size(), 1u);
  EXPECT_EQ(flags->positional()[0], "file.txt");
}

TEST(FlagParserTest, BareBooleanFlags) {
  auto flags = ParseArgs({"--verbose", "--dry-run", "--level=3"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("verbose", false));
  EXPECT_TRUE(flags->GetBool("dry-run", false));
  EXPECT_FALSE(flags->GetBool("missing", false));
  EXPECT_TRUE(flags->GetBool("missing", true));
}

TEST(FlagParserTest, BoolValueSpellings) {
  auto flags = ParseArgs({"--a=true", "--b=YES", "--c=0", "--d=off"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("a", false));
  EXPECT_TRUE(flags->GetBool("b", false));
  EXPECT_FALSE(flags->GetBool("c", true));
  EXPECT_FALSE(flags->GetBool("d", true));
}

TEST(FlagParserTest, DoubleDashEndsFlags) {
  auto flags = ParseArgs({"--x=1", "--", "--not-a-flag", "pos"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->HasFlag("x"));
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "--not-a-flag");
}

TEST(FlagParserTest, PositionalBeforeAndAfterFlags) {
  auto flags = ParseArgs({"mine", "--alpha=0.9", "data.txt"});
  ASSERT_TRUE(flags.ok());
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "mine");
  EXPECT_EQ(flags->positional()[1], "data.txt");
}

TEST(FlagParserTest, MalformedAndParseErrors) {
  EXPECT_FALSE(ParseArgs({"--=oops"}).ok());
  auto flags = ParseArgs({"--count=abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetUint64("count", 0).ok());
  EXPECT_FALSE(flags->GetDouble("count", 0.0).ok());
}

TEST(FlagParserTest, LastOccurrenceWins) {
  auto flags = ParseArgs({"--n=1", "--n=2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags->GetUint64("n", 0), 2u);
}

TEST(FlagParserTest, FlagNames) {
  auto flags = ParseArgs({"--b=1", "--a"});
  ASSERT_TRUE(flags.ok());
  auto names = flags->FlagNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // std::map ordering.
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace corrmine
