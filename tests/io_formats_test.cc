// Tests for the tokenizer, CSV reader and result serialization.

#include <cstdio>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "io/result_io.h"
#include "io/tokenizer.h"

namespace corrmine::io {
namespace {

TEST(TokenizerTest, PaperWordDefinition) {
  // "any consecutive sequence of alphabetic characters": possessive 's' is
  // its own word, numbers vanish.
  auto words = TokenizeWords("Mandela's 27 years; FREEDOM-now!");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], "mandela");
  EXPECT_EQ(words[1], "s");
  EXPECT_EQ(words[2], "years");
  EXPECT_EQ(words[3], "freedom");
  EXPECT_EQ(words[4], "now");
}

TEST(TokenizerTest, ExactTokenCount) {
  auto words = TokenizeWords("a1b2c3");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "a");
  EXPECT_EQ(words[2], "c");
  EXPECT_TRUE(TokenizeWords("123 456").empty());
  EXPECT_TRUE(TokenizeWords("").empty());
}

TEST(TokenizerTest, BuildCorpusPrunesAndInterns) {
  std::vector<std::string> docs = {
      "alpha beta gamma alpha",  // alpha twice -> still one item.
      "alpha beta delta",
      "alpha epsilon zeta",
      "alpha beta theta",
  };
  CorpusOptions options;
  options.min_doc_frequency = 0.5;  // Words in >= 2 of 4 docs survive.
  auto db = BuildCorpus(docs, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_baskets(), 4u);
  // Survivors: alpha (4 docs), beta (3 docs). Everything else pruned.
  EXPECT_EQ(db->num_items(), 2u);
  auto alpha = db->dictionary().Get("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(db->ItemCount(*alpha), 4u);
}

TEST(TokenizerTest, ShortDocumentsDropped) {
  std::vector<std::string> docs = {"one two three four five",
                                   "too short"};
  CorpusOptions options;
  options.min_words_per_document = 3;
  auto db = BuildCorpus(docs, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_baskets(), 1u);
  CorpusOptions harsh;
  harsh.min_words_per_document = 100;
  EXPECT_TRUE(BuildCorpus(docs, harsh).status().IsFailedPrecondition());
}

// --- CSV ---

constexpr char kCsv[] =
    "color,size\n"
    "red,small\n"
    "red,big\n"
    "blue,big\n"
    "# comment row\n"
    "blue,small\n";

TEST(CsvTest, ParsesHeaderAndCategories) {
  auto db = ParseCategoricalCsv(kCsv);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 4u);
  EXPECT_EQ(db->num_attributes(), 2);
  EXPECT_EQ(db->attribute(0).name, "color");
  ASSERT_EQ(db->attribute(0).arity(), 2);
  EXPECT_EQ(db->attribute(0).categories[0], "red");  // First appearance.
  EXPECT_EQ(db->value(2, 0), 1);                     // blue
  EXPECT_EQ(db->CategoryCount(1, 1), 2u);            // big twice.
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_TRUE(ParseCategoricalCsv("").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseCategoricalCsv("a,b\n").status().IsInvalidArgument());  // No rows.
  EXPECT_TRUE(ParseCategoricalCsv("a,b\nx\n").status().IsCorruption());
  EXPECT_TRUE(ParseCategoricalCsv("a,b\nx,\n").status().IsCorruption());
  EXPECT_TRUE(ParseCategoricalCsv("a,b\nx,y\n")
                  .status()
                  .IsFailedPrecondition());  // Single-category columns.
}

TEST(CsvTest, FileRoundTrip) {
  auto db = ParseCategoricalCsv(kCsv);
  ASSERT_TRUE(db.ok());
  std::string path = ::testing::TempDir() + "/corrmine_csv_test.csv";
  ASSERT_TRUE(WriteCategoricalCsv(*db, path).ok());
  auto reloaded = ReadCategoricalCsv(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->num_rows(), db->num_rows());
  for (size_t row = 0; row < db->num_rows(); ++row) {
    for (int a = 0; a < db->num_attributes(); ++a) {
      EXPECT_EQ(reloaded->value(row, a), db->value(row, a));
    }
  }
  std::remove(path.c_str());
}

// --- Result serialization ---

MiningResult SampleResult() {
  MiningResult result;
  LevelStats level;
  level.level = 2;
  level.possible_itemsets = 45;
  level.candidates = 40;
  level.discards = 3;
  level.significant = 12;
  level.not_significant = 25;
  result.levels.push_back(level);
  CorrelationRule rule;
  rule.itemset = Itemset{3, 7, 11};
  rule.chi2.statistic = 123.456;
  rule.chi2.p_value = 1.25e-7;
  rule.chi2.dof = 1;
  rule.major_dependence.mask = 0b101;
  rule.major_dependence.interest = 2.5;
  result.significant.push_back(rule);
  return result;
}

TEST(ResultIoTest, RoundTrip) {
  MiningResult original = SampleResult();
  auto parsed = ParseMiningResult(SerializeMiningResult(original));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->levels.size(), 1u);
  EXPECT_EQ(parsed->levels[0].candidates, 40u);
  EXPECT_EQ(parsed->levels[0].not_significant, 25u);
  ASSERT_EQ(parsed->significant.size(), 1u);
  const CorrelationRule& rule = parsed->significant[0];
  EXPECT_EQ(rule.itemset, (Itemset{3, 7, 11}));
  EXPECT_DOUBLE_EQ(rule.chi2.statistic, 123.456);
  EXPECT_DOUBLE_EQ(rule.chi2.p_value, 1.25e-7);
  EXPECT_EQ(rule.major_dependence.mask, 0b101u);
  EXPECT_DOUBLE_EQ(rule.major_dependence.interest, 2.5);
}

TEST(ResultIoTest, FileRoundTrip) {
  MiningResult original = SampleResult();
  std::string path = ::testing::TempDir() + "/corrmine_result_test.txt";
  ASSERT_TRUE(WriteMiningResult(original, path).ok());
  auto parsed = ReadMiningResult(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->significant.size(), 1u);
  std::remove(path.c_str());
}

TEST(ResultIoTest, RejectsGarbage) {
  EXPECT_TRUE(ParseMiningResult("bogus 1 2 3\n").status().IsCorruption());
  EXPECT_TRUE(ParseMiningResult("level 2 45\n").status().IsCorruption());
  EXPECT_FALSE(ParseMiningResult("rule nan nan\n").ok());
  // Comments and blank lines are fine.
  EXPECT_TRUE(ParseMiningResult("# hi\n\n").ok());
}

}  // namespace
}  // namespace corrmine::io
