#include <gtest/gtest.h>

#include "core/batch_tables.h"
#include "core/chi_squared_test.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(BatchTablesTest, MatchesPerCandidateBuilds) {
  auto db = testing::RandomCorrelatedDatabase(8, 300, 0.7, 5);
  std::vector<Itemset> candidates = {Itemset{0, 1}, Itemset{2, 3},
                                     Itemset{0, 2, 4}, Itemset{1, 5, 6, 7}};
  auto batch = BuildSparseTablesBatch(db, candidates);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto single = SparseContingencyTable::Build(db, candidates[c]);
    ASSERT_TRUE(single.ok());
    const SparseContingencyTable& from_batch = (*batch)[c];
    EXPECT_EQ(from_batch.itemset(), candidates[c]);
    EXPECT_EQ(from_batch.occupied_cells().size(),
              single->occupied_cells().size());
    double batch_chi2 = ComputeChiSquared(from_batch).statistic;
    double single_chi2 = ComputeChiSquared(*single).statistic;
    EXPECT_NEAR(batch_chi2, single_chi2, 1e-9) << candidates[c].ToString();
  }
}

TEST(BatchTablesTest, EmptyCandidateListIsFine) {
  auto db = testing::RandomIndependentDatabase(4, 50, 2);
  auto batch = BuildSparseTablesBatch(db, {});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST(BatchTablesTest, InputValidation) {
  auto db = testing::RandomIndependentDatabase(4, 50, 2);
  EXPECT_TRUE(BuildSparseTablesBatch(db, {Itemset{}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BuildSparseTablesBatch(db, {Itemset{0, 9}})
                  .status()
                  .IsOutOfRange());
  TransactionDatabase empty(3);
  EXPECT_TRUE(BuildSparseTablesBatch(empty, {Itemset{0}})
                  .status()
                  .IsFailedPrecondition());
}

TEST(SparseFromCellsTest, Validation) {
  IndependenceModel model(10, {4, 5});
  Itemset s{1, 2};
  // Valid assembly.
  auto ok = SparseContingencyTable::FromCells(
      s, model,
      {{0b11, 2}, {0b01, 2}, {0b10, 3}, {0b00, 3}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->occupied_cells().size(), 4u);
  // Zero count cell.
  EXPECT_TRUE(SparseContingencyTable::FromCells(s, model, {{0b11, 0}})
                  .status()
                  .IsInvalidArgument());
  // Duplicate masks.
  EXPECT_TRUE(SparseContingencyTable::FromCells(
                  s, model, {{0b11, 5}, {0b11, 5}})
                  .status()
                  .IsInvalidArgument());
  // Counts not summing to n.
  EXPECT_TRUE(SparseContingencyTable::FromCells(s, model, {{0b11, 3}})
                  .status()
                  .IsCorruption());
  // Mask beyond itemset width.
  EXPECT_TRUE(SparseContingencyTable::FromCells(
                  s, model, {{0b100, 10}})
                  .status()
                  .IsOutOfRange());
}

}  // namespace
}  // namespace corrmine
