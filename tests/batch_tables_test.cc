#include <gtest/gtest.h>

#include "core/batch_tables.h"
#include "core/chi_squared_test.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(BatchTablesTest, MatchesPerCandidateBuilds) {
  auto db = testing::RandomCorrelatedDatabase(8, 300, 0.7, 5);
  std::vector<Itemset> candidates = {Itemset{0, 1}, Itemset{2, 3},
                                     Itemset{0, 2, 4}, Itemset{1, 5, 6, 7}};
  auto batch = BuildSparseTablesBatch(db, candidates);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    auto single = SparseContingencyTable::Build(db, candidates[c]);
    ASSERT_TRUE(single.ok());
    const SparseContingencyTable& from_batch = (*batch)[c];
    EXPECT_EQ(from_batch.itemset(), candidates[c]);
    EXPECT_EQ(from_batch.occupied_cells().size(),
              single->occupied_cells().size());
    double batch_chi2 = ComputeChiSquared(from_batch).statistic;
    double single_chi2 = ComputeChiSquared(*single).statistic;
    EXPECT_NEAR(batch_chi2, single_chi2, 1e-9) << candidates[c].ToString();
  }
}

TEST(BatchTablesTest, ParallelShardsMatchSequentialExactly) {
  auto db = testing::RandomCorrelatedDatabase(9, 700, 0.75, 37);
  std::vector<Itemset> candidates = {Itemset{0, 1}, Itemset{1, 2, 3},
                                     Itemset{0, 4, 5, 6}, Itemset{2, 7, 8},
                                     Itemset{3}, Itemset{0, 1, 2, 3, 4}};
  auto sequential = BuildSparseTablesBatch(db, candidates, /*num_threads=*/1);
  auto parallel = BuildSparseTablesBatch(db, candidates, /*num_threads=*/4);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(sequential->size(), parallel->size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    const auto& seq_cells = (*sequential)[c].occupied_cells();
    const auto& par_cells = (*parallel)[c].occupied_cells();
    ASSERT_EQ(seq_cells.size(), par_cells.size()) << candidates[c].ToString();
    for (size_t i = 0; i < seq_cells.size(); ++i) {
      EXPECT_EQ(seq_cells[i].mask, par_cells[i].mask);
      EXPECT_EQ(seq_cells[i].observed, par_cells[i].observed);
    }
  }
  EXPECT_TRUE(BuildSparseTablesBatch(db, candidates, -1)
                  .status()
                  .IsInvalidArgument());
}

TEST(BatchTablesTest, MoreThreadsThanBaskets) {
  auto db = testing::RandomIndependentDatabase(4, 3, 11);
  auto batch = BuildSparseTablesBatch(db, {Itemset{0, 1}}, /*num_threads=*/8);
  ASSERT_TRUE(batch.ok());
  auto single = SparseContingencyTable::Build(db, Itemset{0, 1});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*batch)[0].occupied_cells().size(),
            single->occupied_cells().size());
}

TEST(BatchTablesTest, EmptyCandidateListIsFine) {
  auto db = testing::RandomIndependentDatabase(4, 50, 2);
  auto batch = BuildSparseTablesBatch(db, {});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST(BatchTablesTest, InputValidation) {
  auto db = testing::RandomIndependentDatabase(4, 50, 2);
  EXPECT_TRUE(BuildSparseTablesBatch(db, {Itemset{}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BuildSparseTablesBatch(db, {Itemset{0, 9}})
                  .status()
                  .IsOutOfRange());
  TransactionDatabase empty(3);
  EXPECT_TRUE(BuildSparseTablesBatch(empty, {Itemset{0}})
                  .status()
                  .IsFailedPrecondition());
}

TEST(SparseFromCellsTest, Validation) {
  IndependenceModel model(10, {4, 5});
  Itemset s{1, 2};
  // Valid assembly.
  auto ok = SparseContingencyTable::FromCells(
      s, model,
      {{0b11, 2}, {0b01, 2}, {0b10, 3}, {0b00, 3}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->occupied_cells().size(), 4u);
  // Zero count cell.
  EXPECT_TRUE(SparseContingencyTable::FromCells(s, model, {{0b11, 0}})
                  .status()
                  .IsInvalidArgument());
  // Duplicate masks.
  EXPECT_TRUE(SparseContingencyTable::FromCells(
                  s, model, {{0b11, 5}, {0b11, 5}})
                  .status()
                  .IsInvalidArgument());
  // Counts not summing to n.
  EXPECT_TRUE(SparseContingencyTable::FromCells(s, model, {{0b11, 3}})
                  .status()
                  .IsCorruption());
  // Mask beyond itemset width.
  EXPECT_TRUE(SparseContingencyTable::FromCells(
                  s, model, {{0b100, 10}})
                  .status()
                  .IsOutOfRange());
}

}  // namespace
}  // namespace corrmine
