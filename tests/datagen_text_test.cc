#include <gtest/gtest.h>

#include "core/chi_squared_test.h"
#include "datagen/text_generator.h"
#include "itemset/count_provider.h"

namespace corrmine::datagen {
namespace {

TEST(TextGeneratorTest, CorpusShape) {
  auto corpus = GenerateTextCorpus();
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->database.num_baskets(), 91u);
  // Pruning leaves a few hundred distinct words (paper: 416).
  EXPECT_GT(corpus->database.num_items(), 100u);
  EXPECT_LT(corpus->database.num_items(), 600u);
  EXPECT_GT(corpus->raw_vocabulary, corpus->database.num_items());
}

TEST(TextGeneratorTest, PruningRespectsDocFrequency) {
  TextCorpusOptions options;
  auto corpus = GenerateTextCorpus(options);
  ASSERT_TRUE(corpus.ok());
  const TransactionDatabase& db = corpus->database;
  double min_docs = options.min_doc_frequency *
                    static_cast<double>(options.num_documents);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    EXPECT_GE(static_cast<double>(db.ItemCount(i)), min_docs)
        << "item " << *db.dictionary().Name(i);
  }
}

TEST(TextGeneratorTest, MandelaNelsonNearPerfectlyCorrelated) {
  auto corpus = GenerateTextCorpus();
  ASSERT_TRUE(corpus.ok());
  const TransactionDatabase& db = corpus->database;
  auto mandela = db.dictionary().Get("mandela");
  auto nelson = db.dictionary().Get("nelson");
  ASSERT_TRUE(mandela.ok());
  ASSERT_TRUE(nelson.ok());
  BitmapCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{*mandela, *nelson});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult chi2 = ComputeChiSquared(*table);
  // The paper's Table 4 reports chi2 = 91.000 = n for this pair; our linked
  // emission reproduces a near-perfect association.
  EXPECT_GT(chi2.statistic, 0.7 * static_cast<double>(db.num_baskets()));
  EXPECT_TRUE(chi2.SignificantAt(0.95));
}

TEST(TextGeneratorTest, TopicPairsCorrelated) {
  auto corpus = GenerateTextCorpus();
  ASSERT_TRUE(corpus.ok());
  const TransactionDatabase& db = corpus->database;
  BitmapCountProvider provider(db);
  auto liberia = db.dictionary().Get("liberia");
  auto west = db.dictionary().Get("west");
  if (liberia.ok() && west.ok()) {
    auto table = ContingencyTable::Build(provider, Itemset{*liberia, *west});
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(ComputeChiSquared(*table).SignificantAt(0.95));
  } else {
    GTEST_FAIL() << "topic words pruned from the corpus";
  }
}

TEST(TextGeneratorTest, ManyWordPairsCorrelatedButNotAll) {
  auto corpus = GenerateTextCorpus();
  ASSERT_TRUE(corpus.ok());
  const TransactionDatabase& db = corpus->database;
  BitmapCountProvider provider(db);
  // Pair significance rate over a strided sample of the vocabulary (every
  // third word keeps the quadratic loop cheap while covering the curated
  // head, topical middle, and filler tail).
  size_t correlated = 0;
  size_t total = 0;
  for (ItemId a = 0; a < db.num_items(); a += 3) {
    for (ItemId b = a + 3; b < db.num_items(); b += 3) {
      auto table = ContingencyTable::Build(provider, Itemset{a, b});
      ASSERT_TRUE(table.ok());
      if (ComputeChiSquared(*table).SignificantAt(0.95)) ++correlated;
      ++total;
    }
  }
  double fraction = static_cast<double>(correlated) /
                    static_cast<double>(total);
  // Paper: ~10% of word pairs correlated. Shape check: clearly some, far
  // from all.
  EXPECT_GT(fraction, 0.03);
  EXPECT_LT(fraction, 0.5);
}

TEST(TextGeneratorTest, DeterministicForSeed) {
  auto a = GenerateTextCorpus();
  auto b = GenerateTextCorpus();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->database.num_baskets(), b->database.num_baskets());
  for (size_t i = 0; i < a->database.num_baskets(); ++i) {
    EXPECT_EQ(a->database.basket(i), b->database.basket(i));
  }
}

TEST(TextGeneratorTest, InputValidation) {
  TextCorpusOptions bad;
  bad.num_documents = 0;
  EXPECT_TRUE(GenerateTextCorpus(bad).status().IsInvalidArgument());
  TextCorpusOptions bad2;
  bad2.min_doc_frequency = 1.5;
  EXPECT_TRUE(GenerateTextCorpus(bad2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine::datagen
