#include <cmath>

#include <gtest/gtest.h>

#include "stats/bivariate_normal.h"
#include "stats/normal.h"
#include "stats/tetrachoric.h"

namespace corrmine::stats {
namespace {

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, CdfTailsAccurate) {
  EXPECT_NEAR(NormalCdf(-6.0), 9.865876450376946e-10, 1e-18);
  EXPECT_NEAR(1.0 - NormalCdf(6.0), 9.865876450377e-10, 1e-15);
}

TEST(NormalTest, QuantileRoundTrip) {
  for (double p : {1e-10, 1e-4, 0.02425, 0.1, 0.5, 0.77, 0.975, 1 - 1e-6}) {
    double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-12) << "p = " << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.95), 1.6448536269514722, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963984540054, 1e-10);
}

// --- Bivariate normal ---

TEST(BivariateNormalTest, IndependenceFactorizes) {
  for (double h : {-1.5, 0.0, 0.7}) {
    for (double k : {-0.3, 0.5, 2.0}) {
      EXPECT_NEAR(BivariateNormalUpper(h, k, 0.0),
                  (1.0 - NormalCdf(h)) * (1.0 - NormalCdf(k)), 1e-12);
    }
  }
}

TEST(BivariateNormalTest, PerfectCorrelationIsMin) {
  // rho = 1: P(X > h, X > k) = 1 - Phi(max(h, k)).
  EXPECT_NEAR(BivariateNormalUpper(0.5, -0.2, 1.0), 1.0 - NormalCdf(0.5),
              1e-9);
  // rho = -1: P(X > h, -X > k) = max(0, Phi(-k) - Phi(h)).
  EXPECT_NEAR(BivariateNormalUpper(0.5, -0.2, -1.0), 0.0, 1e-12);
  EXPECT_NEAR(BivariateNormalUpper(-0.5, -0.2, -1.0),
              NormalCdf(0.2) - NormalCdf(-0.5), 1e-9);
  EXPECT_NEAR(BivariateNormalUpper(1.0, 0.5, -1.0), 0.0, 1e-12);
}

TEST(BivariateNormalTest, SymmetricAtZeroThresholds) {
  // P(X > 0, Y > 0) = 1/4 + asin(rho) / (2 pi): a classical identity.
  for (double rho : {-0.9, -0.5, 0.0, 0.3, 0.8, 0.95}) {
    double expected = 0.25 + std::asin(rho) / (2.0 * M_PI);
    EXPECT_NEAR(BivariateNormalUpper(0.0, 0.0, rho), expected, 5e-8)
        << "rho = " << rho;
  }
}

TEST(BivariateNormalTest, MonotoneInRho) {
  double prev = -1.0;
  for (double rho = -0.99; rho <= 0.99; rho += 0.03) {
    double value = BivariateNormalUpper(0.4, -0.6, rho);
    EXPECT_GE(value, prev - 1e-12) << "rho = " << rho;
    prev = value;
  }
}

TEST(BivariateNormalTest, ArgumentSymmetry) {
  EXPECT_NEAR(BivariateNormalUpper(0.3, 1.1, 0.6),
              BivariateNormalUpper(1.1, 0.3, 0.6), 1e-12);
}

TEST(BivariateNormalTest, CdfAndUpperConsistent) {
  // P(X<=h, Y<=k) + P(X>h) + P(Y>k) - P(X>h, Y>k) = 1.
  for (double rho : {-0.7, 0.0, 0.85}) {
    double h = 0.3, k = -0.9;
    double total = BivariateNormalCdf(h, k, rho) + (1.0 - NormalCdf(h)) +
                   (1.0 - NormalCdf(k)) - BivariateNormalUpper(h, k, rho);
    EXPECT_NEAR(total, 1.0, 1e-10) << "rho = " << rho;
  }
}

// --- Tetrachoric ---

TEST(TetrachoricTest, RecoversIndependence) {
  auto rho = TetrachoricCorrelation(0.4, 0.7, 0.4 * 0.7);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, 0.0, 1e-8);
}

TEST(TetrachoricTest, RoundTripsThroughForwardMap) {
  for (double target_rho : {-0.8, -0.3, 0.2, 0.6, 0.9}) {
    for (auto [pa, pb] : {std::pair{0.3, 0.5}, {0.9, 0.1}, {0.62, 0.58}}) {
      double joint = ThresholdedJointProbability(pa, pb, target_rho);
      auto solved = TetrachoricCorrelation(pa, pb, joint);
      ASSERT_TRUE(solved.ok());
      EXPECT_NEAR(*solved, target_rho, 1e-7)
          << "pa=" << pa << " pb=" << pb << " rho=" << target_rho;
    }
  }
}

TEST(TetrachoricTest, StructuralZeroClampsToBoundary) {
  // Joint of exactly 0 for overlapping marginals is unattainable under a
  // copula with |rho| < 1 -> clamp to -max_abs_rho.
  auto rho = TetrachoricCorrelation(0.5, 0.5, 0.0);
  ASSERT_TRUE(rho.ok());
  EXPECT_NEAR(*rho, -0.999, 1e-12);
}

TEST(TetrachoricTest, RejectsBadInputs) {
  EXPECT_FALSE(TetrachoricCorrelation(0.0, 0.5, 0.0).ok());
  EXPECT_FALSE(TetrachoricCorrelation(0.5, 1.0, 0.5).ok());
  EXPECT_FALSE(TetrachoricCorrelation(0.5, 0.5, 0.6).ok());  // > min marginal
  EXPECT_FALSE(TetrachoricCorrelation(0.5, 0.5, -0.1).ok());
}

}  // namespace
}  // namespace corrmine::stats
