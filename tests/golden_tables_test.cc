// Golden-file regression tests for the paper-table workloads. Each test
// re-runs the deterministic core of a bench/table*_*.cc binary (fixed
// generator seeds, fixed miner options) and renders a timing-free text
// snapshot, compared byte-for-byte against tests/golden/<name>.txt.
//
// When an intentional change shifts the output, regenerate with:
//   ./golden_tables_test --update-golden
// and review the golden diff like any other code change. GOLDEN_DIR is
// injected by CMake and points into the source tree, so --update-golden
// rewrites the checked-in files in place.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/chi_squared_miner.h"
#include "datagen/census_generator.h"
#include "datagen/quest_generator.h"
#include "datagen/text_generator.h"
#include "io/stats_json.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

#ifndef GOLDEN_DIR
#error "GOLDEN_DIR must be defined by the build"
#endif

namespace corrmine {

// Set from main before gtest runs; outside the anonymous namespace so the
// flag-peeling main below can reach it.
bool g_update_golden = false;

namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(GOLDEN_DIR) + "/" + name + ".txt";
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    out.flush();
    ASSERT_TRUE(out.good()) << "failed writing " << path;
    std::cout << "updated " << path << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run ./golden_tables_test --update-golden to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "snapshot for " << name << " diverged from " << path
      << "; if intentional, regenerate with --update-golden";
}

// --- table1_census: dictionary, first baskets, marginals ----------------

TEST(GoldenTablesTest, Table1Census) {
  using datagen::CensusItems;
  using datagen::kCensusNumItems;
  std::ostringstream out;

  io::TablePrinter items({"item", "attribute", "possible non-attribute "
                                               "values"});
  for (int i = 0; i < kCensusNumItems; ++i) {
    items.AddRow({"i" + std::to_string(i), CensusItems()[i].attribute,
                  CensusItems()[i].non_attribute});
  }
  items.Print(out);

  datagen::CensusOptions options;
  auto db = datagen::GenerateCensusData(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  out << "\nfirst 9 of " << db->num_baskets() << " baskets:\n";
  io::TablePrinter baskets({"basket", "items"});
  for (size_t row = 0; row < 9 && row < db->num_baskets(); ++row) {
    std::string contents;
    for (ItemId item : db->basket(row)) {
      if (!contents.empty()) contents += ", ";
      contents += "i" + std::to_string(item);
    }
    baskets.AddRow({std::to_string(row + 1), contents});
  }
  baskets.Print(out);

  out << "\nmarginals:\n";
  const auto& model = datagen::CensusModel::Paper();
  io::TablePrinter marginals({"item", "paper %", "generated %"});
  for (int i = 0; i < kCensusNumItems; ++i) {
    auto p = db->ItemProbability(static_cast<ItemId>(i));
    ASSERT_TRUE(p.ok());
    marginals.AddRow({"i" + std::to_string(i),
                      io::FormatPercent(model.Marginal(i), 1),
                      io::FormatPercent(*p, 1)});
  }
  marginals.Print(out);

  CompareOrUpdate("table1_census", out.str());
}

// --- table4_text: word correlations up to triples -----------------------

TEST(GoldenTablesTest, Table4Text) {
  auto corpus = datagen::GenerateTextCorpus();
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  const TransactionDatabase& db = corpus->database;
  std::ostringstream out;
  out << "documents: " << db.num_baskets()
      << ", vocabulary: " << db.num_items() << "\n\n";

  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 5;
  options.support.cell_fraction = 0.25 + 1e-9;
  options.max_level = 3;
  options.chi2.min_expected_cell = 1.0;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<const CorrelationRule*> pairs;
  std::vector<const CorrelationRule*> triples;
  for (const CorrelationRule& rule : result->significant) {
    (rule.itemset.size() == 2 ? pairs : triples).push_back(&rule);
  }
  auto by_chi2 = [](const CorrelationRule* a, const CorrelationRule* b) {
    if (a->chi2.statistic != b->chi2.statistic) {
      return a->chi2.statistic > b->chi2.statistic;
    }
    return a->itemset < b->itemset;  // Total order keeps the top-k stable.
  };
  std::sort(pairs.begin(), pairs.end(), by_chi2);
  std::sort(triples.begin(), triples.end(), by_chi2);

  io::TablePrinter table({"correlated words", "chi2"});
  auto add_rules = [&](const std::vector<const CorrelationRule*>& rules,
                       size_t limit) {
    for (size_t i = 0; i < rules.size() && i < limit; ++i) {
      std::string words;
      for (ItemId item : rules[i]->itemset) {
        if (!words.empty()) words += " ";
        auto name = db.dictionary().Name(item);
        words += name.ok() ? *name : ("w" + std::to_string(item));
      }
      table.AddRow({words, io::FormatDouble(rules[i]->chi2.statistic, 3)});
    }
  };
  add_rules(pairs, 8);
  add_rules(triples, 6);
  table.Print(out);

  out << "\nminimal correlated pairs: " << pairs.size()
      << "\nminimal correlated triples: " << triples.size() << "\n";
  out << "stats: " << RenderDeterministicStats(*result, nullptr) << "\n";

  CompareOrUpdate("table4_text", out.str());
}

// --- table5_quest: pruning effectiveness per level ----------------------

TEST(GoldenTablesTest, Table5Quest) {
  datagen::QuestOptions quest;
  quest.num_patterns = 140;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  BitmapCountProvider provider(*db);
  MinerOptions options;
  options.support.min_count = static_cast<uint64_t>(
      0.05 * static_cast<double>(db->num_baskets()));
  options.support.cell_fraction = 0.25 + 1e-9;
  options.level_one = LevelOnePruning::kFigure1Strict;
  auto result = MineCorrelations(provider, db->num_items(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::ostringstream out;
  out << "n = " << db->num_baskets() << ", items = " << db->num_items()
      << "\n\n";
  io::TablePrinter table({"level", "itemsets", "|CAND|", "CAND discards",
                          "chi2 tests", "masked cells", "|SIG|",
                          "|NOTSIG|"});
  for (const LevelStats& level : result->levels) {
    table.AddRow({std::to_string(level.level),
                  std::to_string(level.possible_itemsets),
                  std::to_string(level.candidates),
                  std::to_string(level.discards),
                  std::to_string(level.chi2_tests),
                  std::to_string(level.masked_cells),
                  std::to_string(level.significant),
                  std::to_string(level.not_significant)});
  }
  table.Print(out);
  out << "\nstats: " << RenderDeterministicStats(*result, nullptr) << "\n";

  CompareOrUpdate("table5_quest", out.str());
}

}  // namespace
}  // namespace corrmine

// Own main so --update-golden can be peeled off before gtest parses flags.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      corrmine::g_update_golden = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  ::testing::InitGoogleTest(&filtered_argc, args.data());
  return RUN_ALL_TESTS();
}
