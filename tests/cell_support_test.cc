#include <algorithm>

#include <gtest/gtest.h>

#include "core/cell_support.h"
#include "datagen/rng.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(CellSupportTest, RequiredSupportedCells) {
  CellSupportPolicy policy;
  policy.cell_fraction = 0.25;
  EXPECT_EQ(RequiredSupportedCells(policy, 4.0), 1u);
  policy.cell_fraction = 0.26;
  EXPECT_EQ(RequiredSupportedCells(policy, 4.0), 2u);
  policy.cell_fraction = 0.5;
  EXPECT_EQ(RequiredSupportedCells(policy, 8.0), 4u);
  policy.cell_fraction = 1.0;
  EXPECT_EQ(RequiredSupportedCells(policy, 4.0), 4u);
  policy.cell_fraction = 0.01;
  EXPECT_EQ(RequiredSupportedCells(policy, 4.0), 1u);  // At least one.
}

TEST(CellSupportTest, DenseTableSupportDecision) {
  // Cells: both=2, a=1, b=1, neither=1 (n=5).
  auto db = testing::MakeDatabase(2, {{0, 1}, {0, 1}, {0}, {1}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());

  CellSupportPolicy policy;
  policy.min_count = 1;
  policy.cell_fraction = 1.0;  // All four cells need count >= 1: true.
  EXPECT_TRUE(HasCellSupport(*table, policy));

  policy.min_count = 2;  // Only one cell reaches 2.
  policy.cell_fraction = 0.26;
  EXPECT_FALSE(HasCellSupport(*table, policy));
  policy.cell_fraction = 0.25;
  EXPECT_TRUE(HasCellSupport(*table, policy));
}

TEST(CellSupportTest, SparseMatchesDense) {
  auto db = testing::RandomIndependentDatabase(6, 200, 77);
  BitmapCountProvider provider(db);
  for (auto s : {Itemset{0, 1}, Itemset{2, 3, 4}, Itemset{0, 1, 2, 5}}) {
    auto dense = ContingencyTable::Build(provider, s);
    auto sparse = SparseContingencyTable::Build(db, s);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    for (uint64_t min_count : {1, 3, 10, 50}) {
      for (double fraction : {0.1, 0.26, 0.5, 0.9}) {
        CellSupportPolicy policy{min_count, fraction};
        EXPECT_EQ(HasCellSupport(*dense, policy),
                  HasCellSupport(*sparse, policy))
            << s.ToString() << " s=" << min_count << " p=" << fraction;
      }
    }
  }
}

// Property: the paper's support definition is downward closed — if S has
// support, so does every subset of S (Section 4).
class DownwardClosure : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DownwardClosure, SupportedSetsHaveSupportedSubsets) {
  auto db = testing::RandomCorrelatedDatabase(6, 250, 0.6, GetParam());
  BitmapCountProvider provider(db);
  datagen::Rng rng(GetParam() + 9);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ItemId> items;
    size_t size = 3 + rng.NextBelow(3);
    while (items.size() < size) {
      ItemId candidate = static_cast<ItemId>(rng.NextBelow(6));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    Itemset s(items);
    CellSupportPolicy policy;
    policy.min_count = 1 + rng.NextBelow(20);
    policy.cell_fraction = 0.26;
    auto table = ContingencyTable::Build(provider, s);
    ASSERT_TRUE(table.ok());
    if (!HasCellSupport(*table, policy)) continue;
    for (const Itemset& subset : s.SubsetsMissingOne()) {
      auto sub_table = ContingencyTable::Build(provider, subset);
      ASSERT_TRUE(sub_table.ok());
      EXPECT_TRUE(HasCellSupport(*sub_table, policy))
          << "supported " << s.ToString() << " but unsupported subset "
          << subset.ToString() << " (s=" << policy.min_count << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DownwardClosure,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

TEST(LevelOnePruningTest, StrictRequiresBothItemsFrequent) {
  CellSupportPolicy policy{10, 0.26};
  EXPECT_TRUE(PairPassesLevelOne(50, 40, 100, policy,
                                 LevelOnePruning::kFigure1Strict));
  EXPECT_FALSE(PairPassesLevelOne(5, 40, 100, policy,
                                  LevelOnePruning::kFigure1Strict));
  EXPECT_FALSE(PairPassesLevelOne(50, 9, 100, policy,
                                  LevelOnePruning::kFigure1Strict));
}

TEST(LevelOnePruningTest, FeasibilityBoundKeepsOneRareItem) {
  CellSupportPolicy policy{10, 0.26};
  // a rare (5 < 10) but b mid-range: cells (!a,b) and (!a,!b) can both
  // reach 10, so the pair stays.
  EXPECT_TRUE(PairPassesLevelOne(5, 40, 100, policy,
                                 LevelOnePruning::kFeasibilityBound));
  // Both rare: only the (neither) cell can reach s -> pruned at p > 0.25.
  EXPECT_FALSE(PairPassesLevelOne(5, 5, 100, policy,
                                  LevelOnePruning::kFeasibilityBound));
  // Both nearly universal: only the (both) cell can reach s.
  EXPECT_FALSE(PairPassesLevelOne(96, 97, 100, policy,
                                  LevelOnePruning::kFeasibilityBound));
}

TEST(LevelOnePruningTest, NoneKeepsEverything) {
  CellSupportPolicy policy{10, 0.26};
  EXPECT_TRUE(
      PairPassesLevelOne(0, 0, 100, policy, LevelOnePruning::kNone));
}

TEST(LevelOnePruningTest, FeasibilityNeverPrunesActuallySupportedPairs) {
  // Soundness: any pair passing the real support test must pass the bound.
  auto db = testing::RandomIndependentDatabase(8, 150, 99);
  BitmapCountProvider provider(db);
  CellSupportPolicy policy{8, 0.26};
  for (ItemId a = 0; a < 8; ++a) {
    for (ItemId b = a + 1; b < 8; ++b) {
      auto table = ContingencyTable::Build(provider, Itemset{a, b});
      ASSERT_TRUE(table.ok());
      if (HasCellSupport(*table, policy)) {
        EXPECT_TRUE(PairPassesLevelOne(db.ItemCount(a), db.ItemCount(b),
                                       db.num_baskets(), policy,
                                       LevelOnePruning::kFeasibilityBound))
            << "pair {" << a << "," << b << "}";
      }
    }
  }
}

}  // namespace
}  // namespace corrmine
