// Differential harness for incremental mining (DESIGN.md §11): after EVERY
// delta batch — randomized appends and sliding-window retirements — border
// repair must reproduce a from-scratch mine of the current window bit for
// bit: rule bytes (double bit patterns, not epsilon compares), level stats,
// and the rendered deterministic stats line. The matrix dimension re-proves
// it for every (threads × shards) layout, because repair re-deals the
// round-robin layout on retirement and leans on the K-invariance contract
// (DESIGN.md §7) for that to be unobservable.

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/border_repair.h"
#include "core/border_state.h"
#include "core/chi_squared_miner.h"
#include "core/session.h"
#include "datagen/quest_generator.h"
#include "io/stats_json.h"

namespace corrmine {
namespace {

/// Bit pattern of a double: the compare must fail on "close enough" floats
/// from a different summation order.
uint64_t Bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Every observable byte of a mining result, frontier included (repair runs
/// with keep_frontier on in these tests so the NOTSIG border is part of the
/// contract, not just the SIG rules).
std::string ExactFingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString();
    out += ':' + std::to_string(Bits(rule.chi2.statistic));
    out += ':' + std::to_string(Bits(rule.chi2.p_value));
    out += ':' + std::to_string(rule.chi2.dof);
    out += ':' + std::to_string(rule.chi2.validity.masked_cells);
    out += ':' + std::to_string(rule.major_dependence.mask);
    out += ':' + std::to_string(rule.major_dependence.observed);
    out += ':' + std::to_string(Bits(rule.major_dependence.interest));
    out += ';';
  }
  out += '|';
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.level) + '/' +
           std::to_string(level.possible_itemsets) + '/' +
           std::to_string(level.candidates) + '/' +
           std::to_string(level.discards) + '/' +
           std::to_string(level.chi2_tests) + '/' +
           std::to_string(level.masked_cells) + '/' +
           std::to_string(level.significant) + '/' +
           std::to_string(level.not_significant) + ';';
  }
  out += '|';
  for (const Itemset& s : result.frontier) {
    out += s.ToString();
    out += ';';
  }
  return out;
}

TransactionDatabase QuestChunk(uint64_t seed, uint64_t baskets,
                               uint32_t items) {
  datagen::QuestOptions quest;
  quest.num_transactions = baskets;
  quest.num_items = items;
  quest.avg_transaction_size = 8.0;
  quest.num_patterns = 12;
  quest.seed = seed;
  auto db = datagen::GenerateQuestData(quest);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

MinerOptions IncrementalMinerOptions() {
  MinerOptions options;
  options.support.min_count = 15;
  options.support.cell_fraction = 0.25;
  options.max_level = 3;
  options.keep_frontier = true;
  return options;
}

/// The from-scratch reference for the miner's current window: a fresh
/// canonical (1-thread, 1-shard, memo-free) session over the same rows and
/// the SAME item space — the incremental side's item space is monotone, so
/// the reference must be built at inc.session().num_items(), not at the
/// window's own max id.
std::string ReferenceFingerprint(const IncrementalMiner& inc,
                                 const MinerOptions& options,
                                 std::string* stats_line) {
  TransactionDatabase rows = inc.session().Flatten();
  SessionOptions canonical;
  canonical.num_threads = 1;
  canonical.num_shards = 1;
  auto session = MiningSession::FromDatabase(rows, canonical);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  auto result = session->Mine(options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  *stats_line = RenderDeterministicStats(*result, nullptr);
  return ExactFingerprint(*result);
}

/// One scripted delta schedule, shared by every matrix cell so all layouts
/// face identical data: append / append / retire / append(wider item
/// space) / retire / append, with chunk sizes drawn from a seeded RNG.
struct DeltaOp {
  bool retire = false;
  uint64_t seed = 0;
  uint64_t baskets = 0;
  uint32_t items = 0;
};

std::vector<DeltaOp> ScriptedSchedule() {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<uint64_t> size(20, 60);
  std::vector<DeltaOp> ops;
  auto append = [&](uint32_t items) {
    ops.push_back({false, rng(), size(rng), items});
  };
  append(50);
  append(50);
  ops.push_back({true});
  append(58);  // wider item space: the window must grow to cover it
  ops.push_back({true});
  append(50);
  return ops;
}

TEST(IncrementalDifferentialTest, RepairMatchesScratchAfterEveryBatch) {
  const MinerOptions options = IncrementalMinerOptions();
  const std::vector<DeltaOp> schedule = ScriptedSchedule();

  for (int threads : {1, 4}) {
    for (int shards : {1, 3}) {
      SessionOptions session_options;
      session_options.num_threads = threads;
      session_options.num_shards = shards;
      auto inc = IncrementalMiner::Create(QuestChunk(1997, 400, 50),
                                          session_options, options);
      ASSERT_TRUE(inc.ok()) << inc.status().ToString();

      // Batch 0: the initial full mine through an empty memo.
      int batch = 0;
      auto check = [&](const char* what) {
        auto repaired = inc->Repair();
        ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
        std::string want_stats;
        std::string want = ReferenceFingerprint(*inc, options, &want_stats);
        EXPECT_EQ(ExactFingerprint(*repaired), want)
            << "threads " << threads << " shards " << shards << " batch "
            << batch << " (" << what << ")";
        EXPECT_EQ(RenderDeterministicStats(*repaired, nullptr), want_stats)
            << "threads " << threads << " shards " << shards << " batch "
            << batch << " (" << what << ")";
        ASSERT_FALSE(repaired->significant.empty()) << "degenerate fixture";
      };
      check("initial");

      for (const DeltaOp& op : schedule) {
        ++batch;
        if (op.retire) {
          ASSERT_TRUE(inc->RetireOldest().ok());
          check("retire");
        } else {
          ASSERT_TRUE(
              inc->Append(QuestChunk(op.seed, op.baskets, op.items)).ok());
          check("append");
        }
      }
    }
  }
}

// Snapshot persistence composes with repair: serialize the state mid-stream,
// decode it into a fresh BorderState, repair against the live session, and
// the result must still be byte-identical to from-scratch. This is the CLI
// --border-out / --resume-from loop without the filesystem.
TEST(IncrementalDifferentialTest, RoundTrippedSnapshotRepairsIdentically) {
  const MinerOptions options = IncrementalMinerOptions();
  SessionOptions session_options;
  session_options.num_threads = 2;
  session_options.num_shards = 2;
  auto inc = IncrementalMiner::Create(QuestChunk(7, 300, 48),
                                      session_options, options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ASSERT_TRUE(inc->Repair().ok());
  ASSERT_TRUE(inc->Append(QuestChunk(8, 40, 48)).ok());

  std::string bytes = EncodeBorderState(inc->state());
  auto reloaded = DecodeBorderState(bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  auto repaired = RepairBorder(inc->session(), &*reloaded);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  std::string want_stats;
  std::string want = ReferenceFingerprint(*inc, options, &want_stats);
  EXPECT_EQ(ExactFingerprint(*repaired), want);
  EXPECT_EQ(RenderDeterministicStats(*repaired, nullptr), want_stats);
}

// A second repair with no intervening delta must be pure memo traffic: the
// window is unchanged, every query the walk issues was memoized by the
// first repair, so the database is never touched.
TEST(IncrementalDifferentialTest, SteadyStateRepairIsAllMemoHits) {
  const MinerOptions options = IncrementalMinerOptions();
  SessionOptions session_options;
  auto inc = IncrementalMiner::Create(QuestChunk(42, 300, 48),
                                      session_options, options);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ASSERT_TRUE(inc->Repair().ok());

  BorderState* state = inc->mutable_state();
  MemoCountProvider memo(&state->counts, inc->session().provider());
  MinerOptions repair_options = state->config.ToMinerOptions();
  auto result =
      MineCorrelations(memo, inc->session().num_items(), repair_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(memo.memo_misses(), 0u)
      << "an unchanged window re-counted the database";
  EXPECT_GT(memo.memo_hits(), 0u);
}

}  // namespace
}  // namespace corrmine
