#include <cmath>

#include <gtest/gtest.h>

#include "datagen/categorical_census.h"
#include "datagen/rng.h"
#include "itemset/categorical_database.h"
#include "mining/categorical_miner.h"

namespace corrmine {
namespace {

StatusOr<CategoricalDatabase> SmallDb() {
  CORRMINE_ASSIGN_OR_RETURN(
      CategoricalDatabase db,
      CategoricalDatabase::Create(
          {{"color", {"red", "green", "blue"}}, {"size", {"small", "big"}}}));
  return db;
}

TEST(CategoricalDatabaseTest, CreateValidation) {
  EXPECT_FALSE(CategoricalDatabase::Create({}).ok());
  EXPECT_FALSE(
      CategoricalDatabase::Create({{"only-one", {"a"}}}).ok());
  EXPECT_TRUE(
      CategoricalDatabase::Create({{"two", {"a", "b"}}}).ok());
}

TEST(CategoricalDatabaseTest, RowsAndCounts) {
  auto db = SmallDb();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->AddRow({0, 1}).ok());
  ASSERT_TRUE(db->AddRow({2, 0}).ok());
  ASSERT_TRUE(db->AddRow({0, 0}).ok());
  EXPECT_EQ(db->num_rows(), 3u);
  EXPECT_EQ(db->value(1, 0), 2);
  EXPECT_EQ(db->CategoryCount(0, 0), 2u);  // "red" twice.
  EXPECT_EQ(db->CategoryCount(1, 1), 1u);  // "big" once.
}

TEST(CategoricalDatabaseTest, RowValidation) {
  auto db = SmallDb();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->AddRow({0}).IsInvalidArgument());       // Short row.
  EXPECT_TRUE(db->AddRow({0, 1, 0}).IsInvalidArgument()); // Long row.
  EXPECT_TRUE(db->AddRow({3, 0}).IsOutOfRange());         // Bad category.
  EXPECT_EQ(db->num_rows(), 0u);
}

TEST(CategoricalMinerTest, BuildTableCounts) {
  auto db = SmallDb();
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->AddRow({0, 0}).ok());
  ASSERT_TRUE(db->AddRow({0, 0}).ok());
  ASSERT_TRUE(db->AddRow({1, 1}).ok());
  auto table = BuildCategoricalTable(*db, 0, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->count(0, 0), 2u);
  EXPECT_EQ(table->count(1, 1), 1u);
  EXPECT_EQ(table->count(2, 0), 0u);
  EXPECT_TRUE(BuildCategoricalTable(*db, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(BuildCategoricalTable(*db, 0, 5).status().IsInvalidArgument());
}

TEST(CategoricalMinerTest, DetectsPlantedDependency) {
  // color determines size with noise; a third attribute is independent.
  auto db = CategoricalDatabase::Create({{"color", {"r", "g", "b"}},
                                         {"size", {"s", "b"}},
                                         {"noise", {"x", "y"}}});
  ASSERT_TRUE(db.ok());
  datagen::Rng rng(42);
  for (int i = 0; i < 600; ++i) {
    uint8_t color = static_cast<uint8_t>(rng.NextBelow(3));
    uint8_t size = rng.NextBernoulli(0.85)
                       ? (color == 0 ? uint8_t{0} : uint8_t{1})
                       : static_cast<uint8_t>(rng.NextBelow(2));
    uint8_t noise = static_cast<uint8_t>(rng.NextBelow(2));
    ASSERT_TRUE(db->AddRow({color, size, noise}).ok());
  }
  auto deps = MineCategoricalDependencies(*db);
  ASSERT_TRUE(deps.ok());
  ASSERT_FALSE(deps->empty());
  // Strongest dependency must be color x size.
  EXPECT_EQ((*deps)[0].attribute_a, 0);
  EXPECT_EQ((*deps)[0].attribute_b, 1);
  EXPECT_EQ((*deps)[0].dof, 2);
  EXPECT_GT((*deps)[0].cramers_v, 0.3);
  // noise should not appear against color or size.
  for (const CategoricalDependency& dep : *deps) {
    EXPECT_FALSE(dep.attribute_b == 2 || dep.attribute_a == 2)
        << "independent attribute flagged (chi2=" << dep.chi_squared << ")";
  }
}

TEST(CategoricalMinerTest, EmptyAndInvalidInputs) {
  auto db = SmallDb();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(
      MineCategoricalDependencies(*db).status().IsFailedPrecondition());
  ASSERT_TRUE(db->AddRow({0, 0}).ok());
  CategoricalMinerOptions bad;
  bad.confidence_level = 0.0;
  EXPECT_TRUE(
      MineCategoricalDependencies(*db, bad).status().IsInvalidArgument());
}

// --- Generated categorical census ---

TEST(CategoricalCensusTest, ShapeAndDeterminism) {
  datagen::CategoricalCensusOptions options;
  options.num_persons = 3000;
  auto a = datagen::GenerateCategoricalCensus(options);
  auto b = datagen::GenerateCategoricalCensus(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_rows(), 3000u);
  EXPECT_EQ(a->num_attributes(), 6);
  for (size_t row = 0; row < 100; ++row) {
    for (int attr = 0; attr < 6; ++attr) {
      EXPECT_EQ(a->value(row, attr), b->value(row, attr));
    }
  }
}

TEST(CategoricalCensusTest, MarginalsRoughlyMatchBuckets) {
  datagen::CategoricalCensusOptions options;
  options.num_persons = 20000;
  auto db = datagen::GenerateCategoricalCensus(options);
  ASSERT_TRUE(db.ok());
  double n = static_cast<double>(db->num_rows());
  // transport: P(drives alone) ~ 18%.
  EXPECT_NEAR(db->CategoryCount(0, 0) / n, 0.18, 0.02);
  // military: P(veteran) ~ 10.7%.
  EXPECT_NEAR(db->CategoryCount(3, 1) / n, 0.107, 0.02);
  // age: over 40 ~ 38.5%.
  EXPECT_NEAR(db->CategoryCount(1, 2) / n, 0.385, 0.02);
}

TEST(CategoricalCensusTest, FindsFinerGrainedDependencies) {
  datagen::CategoricalCensusOptions options;
  options.num_persons = 30370;
  auto db = datagen::GenerateCategoricalCensus(options);
  ASSERT_TRUE(db.ok());
  auto deps = MineCategoricalDependencies(*db);
  ASSERT_TRUE(deps.ok());
  // military x age and marital x age must be among the dependencies.
  bool military_age = false, marital_age = false;
  for (const CategoricalDependency& dep : *deps) {
    if (dep.attribute_a == 1 && dep.attribute_b == 3) military_age = true;
    if (dep.attribute_a == 1 && dep.attribute_b == 5) marital_age = true;
  }
  EXPECT_TRUE(military_age);
  EXPECT_TRUE(marital_age);
}

}  // namespace
}  // namespace corrmine
