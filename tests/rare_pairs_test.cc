#include <gtest/gtest.h>

#include "mining/rare_pairs.h"
#include "test_util.h"

namespace corrmine {
namespace {

// Database where rare items 0 and 1 always co-occur (5 of 500 baskets),
// rare items 2 and 3 never co-occur but are independent of everything, and
// item 4 is common.
TransactionDatabase RareStructureDb() {
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 5; ++i) baskets.push_back({0, 1, 4});
  for (int i = 0; i < 8; ++i) baskets.push_back({2, 4});
  for (int i = 0; i < 8; ++i) baskets.push_back({3});
  for (int i = 0; i < 300; ++i) baskets.push_back({4});
  for (int i = 0; i < 179; ++i) baskets.push_back({});
  return testing::MakeDatabase(5, baskets);
}

TEST(RarePairsTest, FindsCooccurringRareItems) {
  auto db = RareStructureDb();
  BitmapCountProvider provider(db);
  RarePairOptions options;
  options.max_item_fraction = 0.05;
  auto results = MineRarePairs(provider, db.num_items(), options);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // The perfectly co-occurring pair {0,1} must rank first, with a joint
  // interest far above 1.
  EXPECT_EQ((*results)[0].pair, (Itemset{0, 1}));
  EXPECT_GT((*results)[0].joint_interest, 10.0);
  EXPECT_LT((*results)[0].p_value, 1e-6);
  EXPECT_EQ((*results)[0].count_both, 5u);
}

TEST(RarePairsTest, CommonItemsExcludedByAntiSupport) {
  auto db = RareStructureDb();
  BitmapCountProvider provider(db);
  RarePairOptions options;
  options.max_item_fraction = 0.05;
  auto results = MineRarePairs(provider, db.num_items(), options);
  ASSERT_TRUE(results.ok());
  for (const RarePairResult& result : *results) {
    EXPECT_FALSE(result.pair.Contains(4))
        << "common item leaked through anti-support";
  }
}

TEST(RarePairsTest, IndependentRarePairsNotReported) {
  // 2 and 3 are rare and disjoint, but with these margins the exact test
  // cannot reject independence at any strict threshold... verify they do
  // not appear with a tight p-value cutoff.
  auto db = RareStructureDb();
  BitmapCountProvider provider(db);
  RarePairOptions options;
  options.max_item_fraction = 0.05;
  options.max_p_value = 1e-4;
  auto results = MineRarePairs(provider, db.num_items(), options);
  ASSERT_TRUE(results.ok());
  for (const RarePairResult& result : *results) {
    EXPECT_NE(result.pair, (Itemset{2, 3}));
  }
}

TEST(RarePairsTest, NullDataYieldsNothingAtStrictCutoff) {
  auto db = testing::RandomIndependentDatabase(10, 400, 3);
  BitmapCountProvider provider(db);
  RarePairOptions options;
  options.max_item_fraction = 0.3;
  options.max_p_value = 1e-4;
  auto results = MineRarePairs(provider, db.num_items(), options);
  ASSERT_TRUE(results.ok());
  EXPECT_LE(results->size(), 1u);
}

TEST(RarePairsTest, SortedByPValue) {
  auto db = RareStructureDb();
  BitmapCountProvider provider(db);
  RarePairOptions options;
  options.max_item_fraction = 0.06;
  options.max_p_value = 0.5;
  auto results = MineRarePairs(provider, db.num_items(), options);
  ASSERT_TRUE(results.ok());
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LE((*results)[i - 1].p_value, (*results)[i].p_value);
  }
}

TEST(RarePairsTest, InputValidation) {
  TransactionDatabase empty(3);
  ScanCountProvider provider(empty);
  EXPECT_TRUE(MineRarePairs(provider, 3, RarePairOptions())
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(3, 20, 1);
  BitmapCountProvider ok_provider(db);
  RarePairOptions bad;
  bad.max_item_fraction = 0.0;
  EXPECT_TRUE(
      MineRarePairs(ok_provider, 3, bad).status().IsInvalidArgument());
  RarePairOptions bad2;
  bad2.max_p_value = 0.0;
  EXPECT_TRUE(
      MineRarePairs(ok_provider, 3, bad2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine
