#include "io/stats_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "itemset/count_provider.h"
#include "io/json_reader.h"

namespace corrmine {
namespace {

datagen::QuestOptions SmallQuest() {
  datagen::QuestOptions quest;
  quest.num_transactions = 2000;
  quest.num_items = 60;
  quest.avg_transaction_size = 8.0;
  quest.num_patterns = 15;
  return quest;
}

MinerOptions SmallMinerOptions() {
  MinerOptions options;
  options.support.min_count = 20;
  options.support.cell_fraction = 0.25;
  return options;
}

TEST(StatsJsonTest, DeterministicSectionSchema) {
  MiningResult result;
  LevelStats level;
  level.level = 2;
  level.possible_itemsets = 45;
  level.candidates = 10;
  level.discards = 2;
  level.chi2_tests = 8;
  level.masked_cells = 3;
  level.significant = 5;
  level.not_significant = 3;
  result.levels.push_back(level);

  std::string json = RenderDeterministicStats(result, nullptr);
  EXPECT_EQ(json,
            "{\"schema\":\"corrmine-stats-v1\",\"rules\":0,\"levels\":["
            "{\"level\":2,\"possible\":45,\"cand\":10,\"discards\":2,"
            "\"chi2_tests\":8,\"masked_cells\":3,\"sig\":5,\"notsig\":3}"
            "],\"cache\":null}");

  CachedCountProvider::CacheStats cache;
  cache.queries = 4;
  cache.hits = 3;
  cache.misses = 1;
  cache.and_word_ops = 10;
  cache.uncached_and_word_ops = 20;
  std::string with_cache = RenderDeterministicStats(result, &cache);
  EXPECT_NE(with_cache.find("\"cache\":{\"queries\":4,\"hits\":3,"
                            "\"misses\":1,\"overflow_builds\":0,"
                            "\"and_word_ops\":10,"
                            "\"uncached_and_word_ops\":20}"),
            std::string::npos)
      << with_cache;
  // Single line (grep-comparable).
  EXPECT_EQ(with_cache.find('\n'), std::string::npos);
}

TEST(StatsJsonTest, FullDocumentHasBothSections) {
  MiningResult result;
  MetricsRegistry registry;
  registry.GetCounter("miner.runs")->Add();
  std::string json = RenderStatsJson(result, nullptr, registry);
  EXPECT_NE(json.find("\"schema\": \"corrmine-stats-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"deterministic\": {"), std::string::npos);
  EXPECT_NE(json.find("\"runtime\": {"), std::string::npos);
  // The deterministic object must sit on one line of the document, so
  // `grep '"deterministic"'` pulls exactly the comparable section.
  std::istringstream lines(json);
  std::string line;
  int deterministic_lines = 0;
  while (std::getline(lines, line)) {
    if (line.find("\"deterministic\"") != std::string::npos) {
      ++deterministic_lines;
      EXPECT_NE(line.find("corrmine-stats-v1"), std::string::npos);
    }
  }
  EXPECT_EQ(deterministic_lines, 1);
}

TEST(StatsJsonTest, FullDocumentCarriesProfileAndTraceSections) {
  MiningResult result;
  MetricsRegistry registry;
  std::string json = RenderStatsJson(result, nullptr, registry);
  // Present in every configuration — profiling off, PMU denied, metrics
  // compiled out — because statsdiff --validate-profile checks structure
  // unconditionally.
  EXPECT_NE(json.find("\"profile\": {\"pmu\":{\"available\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"trace\": {\"dropped_events\": "), std::string::npos)
      << json;
  auto doc = io::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const io::JsonValue* profile = doc->Find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_NE(profile->Find("pmu"), nullptr);
  EXPECT_NE(profile->Find("phases"), nullptr);
  EXPECT_NE(profile->Find("sampling"), nullptr);
  // Never inside the deterministic section (the statsdiff hygiene check).
  const io::JsonValue* det = doc->Find("deterministic");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->Find("profile"), nullptr);
  EXPECT_EQ(det->Find("kernel"), nullptr);
}

// Satellite regression: drops in the trace rings must surface in the
// stats document, not just inside the Chrome export.
TEST(StatsJsonTest, TraceRingOverflowIsReportedInStatsJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(/*events_per_thread=*/8);
  for (int i = 0; i < 200; ++i) TraceInstant("overflow.spam", -1, -1, i);
  tracer.Stop();

  MiningResult result;
  MetricsRegistry registry;
  std::string json = RenderStatsJson(result, nullptr, registry);
  auto doc = io::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const io::JsonValue* trace = doc->Find("trace");
  ASSERT_NE(trace, nullptr);
  const io::JsonValue* dropped = trace->Find("dropped_events");
  ASSERT_NE(dropped, nullptr);
  ASSERT_TRUE(dropped->is_number());
  if (kMetricsEnabled) {
    EXPECT_EQ(static_cast<uint64_t>(dropped->number_value), 200u - 8u);
  } else {
    EXPECT_EQ(dropped->number_value, 0);
  }
  // Reset so later suites in this process start drop-free.
  tracer.Start();
  tracer.Stop();
}

TEST(StatsJsonTest, WriteStatsJsonRoundTrips) {
  std::string path = ::testing::TempDir() + "/stats_json_test_out.json";
  Status status = WriteStatsJson(path, "{\"x\":1}");
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\"x\":1}\n");
  std::remove(path.c_str());
}

TEST(StatsJsonTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      WriteStatsJson("/nonexistent-dir-xyz/stats.json", "{}").ok());
}

// The acceptance bar for the whole observability layer: the deterministic
// section is byte-identical across thread counts on the same workload.
TEST(StatsJsonTest, DeterministicSectionThreadCountInvariant) {
  auto db = datagen::GenerateQuestData(SmallQuest());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  BitmapCountProvider provider(*db);

  std::string baseline;
  for (int threads : {1, 8}) {
    CachedCountProvider cached(provider.index());
    MinerOptions options = SmallMinerOptions();
    options.num_threads = threads;
    MetricsRegistry registry;
    options.metrics = &registry;
    auto result = MineCorrelations(cached, db->num_items(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CachedCountProvider::CacheStats cache = cached.stats();
    std::string json = RenderDeterministicStats(*result, &cache);
    if (threads == 1) {
      baseline = json;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(json, baseline)
          << "deterministic stats diverged at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace corrmine
