// Differential tests for the counting kernels (DESIGN.md §9): every
// compiled-in-and-runnable SIMD variant must return exactly the integers a
// plain reference loop returns, on adversarial word shapes — tail words
// past the last full vector lane, all-zero blocks (the early-exit path),
// single-bit and all-ones words, and empty intersections. The
// prefix-blocked executor is checked the same way, against naive
// VerticalIndex::CountAllPresent, for every kernel and for arbitrary group
// partitions.

#include "itemset/kernels.h"

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "itemset/bitmap.h"
#include "itemset/itemset.h"
#include "itemset/transaction_database.h"

namespace corrmine {
namespace {

// Hand-written reference loops, deliberately independent of the kernel
// layer (including its scalar TU) so a bug shared by all kernels is still
// caught.
uint64_t RefPopcount(const std::vector<uint64_t>& words) {
  uint64_t total = 0;
  for (uint64_t w : words) {
    while (w != 0) {
      total += w & 1;
      w >>= 1;
    }
  }
  return total;
}

uint64_t RefAndCount(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  std::vector<uint64_t> anded(a.size());
  for (size_t i = 0; i < a.size(); ++i) anded[i] = a[i] & b[i];
  return RefPopcount(anded);
}

std::vector<uint64_t> RefAndAll(
    const std::vector<const std::vector<uint64_t>*>& ops, size_t n) {
  std::vector<uint64_t> acc(n, ~uint64_t{0});
  if (ops.empty()) return acc;
  for (size_t i = 0; i < n; ++i) {
    uint64_t w = (*ops[0])[i];
    for (size_t k = 1; k < ops.size(); ++k) w &= (*ops[k])[i];
    acc[i] = w;
  }
  return acc;
}

// The adversarial word-count menu: empty, sub-word, one word, every
// remainder class around the 4-word (AVX2) and 8-word (AVX-512) lane
// widths, and two larger buffers with ragged tails.
const size_t kShapes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65};

std::vector<uint64_t> RandomWords(size_t n, std::mt19937_64* rng,
                                  double density) {
  std::bernoulli_distribution bit(density);
  std::vector<uint64_t> words(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (int b = 0; b < 64; ++b) {
      if (bit(*rng)) words[i] |= uint64_t{1} << b;
    }
  }
  return words;
}

// Operand patterns that stress distinct kernel paths.
std::vector<std::vector<uint64_t>> PatternOperands(size_t n,
                                                   std::mt19937_64* rng) {
  std::vector<std::vector<uint64_t>> ops;
  ops.push_back(RandomWords(n, rng, 0.5));           // dense random
  ops.push_back(RandomWords(n, rng, 0.02));          // sparse random
  ops.push_back(std::vector<uint64_t>(n, 0));        // all zero
  ops.push_back(std::vector<uint64_t>(n, ~uint64_t{0}));  // all ones
  std::vector<uint64_t> single(n, 0);
  if (n > 0) single[n - 1] = uint64_t{1} << 63;      // one bit, last word
  ops.push_back(single);
  // Disjoint pair: even bits vs odd bits — empty intersection.
  ops.push_back(std::vector<uint64_t>(n, 0x5555555555555555ULL));
  ops.push_back(std::vector<uint64_t>(n, 0xAAAAAAAAAAAAAAAAULL));
  return ops;
}

class KernelGuard {
 public:
  ~KernelGuard() { EXPECT_TRUE(SetActiveKernel("auto").ok()); }
};

TEST(CountingKernelsTest, ScalarAlwaysAvailable) {
  std::vector<const CountingKernels*> kernels = AvailableKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front()->isa, KernelIsa::kScalar);
  EXPECT_STREQ(kernels.front()->name, "scalar");
}

TEST(CountingKernelsTest, AllKernelsMatchReferenceOnAdversarialShapes) {
  std::mt19937_64 rng(20260805);
  for (const CountingKernels* kernels : AvailableKernels()) {
    SCOPED_TRACE(kernels->name);
    for (size_t n : kShapes) {
      SCOPED_TRACE("words=" + std::to_string(n));
      std::vector<std::vector<uint64_t>> ops = PatternOperands(n, &rng);
      for (size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(kernels->popcount(ops[i].data(), n), RefPopcount(ops[i]));
        for (size_t j = 0; j < ops.size(); ++j) {
          const uint64_t want = RefAndCount(ops[i], ops[j]);
          EXPECT_EQ(kernels->and_count(ops[i].data(), ops[j].data(), n),
                    want);
          // Fused and_count_into: result words and count in one pass.
          std::vector<uint64_t> dst(n, 0xDEADBEEFDEADBEEFULL);
          EXPECT_EQ(kernels->and_count_into(dst.data(), ops[i].data(),
                                            ops[j].data(), n),
                    want);
          std::vector<uint64_t> ref =
              RefAndAll({&ops[i], &ops[j]}, n);
          EXPECT_EQ(dst, ref);
          // and_inplace agrees with the materialized intersection.
          std::vector<uint64_t> inplace = ops[i];
          kernels->and_inplace(inplace.data(), ops[j].data(), n);
          EXPECT_EQ(inplace, ref);
        }
      }
    }
  }
}

TEST(CountingKernelsTest, MultiAndAndBlockMatchReference) {
  std::mt19937_64 rng(97);
  for (const CountingKernels* kernels : AvailableKernels()) {
    SCOPED_TRACE(kernels->name);
    for (size_t n : kShapes) {
      SCOPED_TRACE("words=" + std::to_string(n));
      std::vector<std::vector<uint64_t>> ops = PatternOperands(n, &rng);
      // k from 1 (multi_and) / 2 (and_block) up past the pattern count so
      // repeats appear; operand choice cycles through all patterns,
      // including the disjoint pair that makes the AND collapse to zero.
      for (size_t k = 1; k <= ops.size() + 2; ++k) {
        std::vector<const uint64_t*> ptrs;
        std::vector<const std::vector<uint64_t>*> refs;
        for (size_t i = 0; i < k; ++i) {
          ptrs.push_back(ops[(i * 3 + k) % ops.size()].data());
          refs.push_back(&ops[(i * 3 + k) % ops.size()]);
        }
        const std::vector<uint64_t> ref = RefAndAll(refs, n);
        EXPECT_EQ(kernels->multi_and_count(ptrs.data(), k, n),
                  RefPopcount(ref));
        if (k >= 2) {
          std::vector<uint64_t> dst(n, 0xFEEDFACEFEEDFACEULL);
          kernels->and_block(dst.data(), ptrs.data(), k, n);
          EXPECT_EQ(dst, ref);
        }
      }
    }
  }
}

TEST(CountingKernelsTest, AliasingContracts) {
  std::mt19937_64 rng(7);
  for (const CountingKernels* kernels : AvailableKernels()) {
    SCOPED_TRACE(kernels->name);
    const size_t n = 65;
    std::vector<uint64_t> a = RandomWords(n, &rng, 0.4);
    std::vector<uint64_t> b = RandomWords(n, &rng, 0.4);
    const std::vector<uint64_t> ref = RefAndAll({&a, &b}, n);
    // and_inplace with dst == src is the identity.
    std::vector<uint64_t> self = a;
    kernels->and_inplace(self.data(), self.data(), n);
    EXPECT_EQ(self, a);
    // and_count_into may write over either input.
    std::vector<uint64_t> dst = a;
    EXPECT_EQ(kernels->and_count_into(dst.data(), dst.data(), b.data(), n),
              RefPopcount(ref));
    EXPECT_EQ(dst, ref);
  }
}

TEST(CountingKernelsTest, BitmapWrappersRouteThroughActiveKernel) {
  // Force each runnable kernel in turn and check the public Bitmap API
  // returns identical answers — this is the path mining actually takes.
  KernelGuard guard;
  std::mt19937_64 rng(1234);
  const size_t bits = 64 * 65 + 17;  // ragged final word
  Bitmap a(bits), b(bits), c(bits);
  std::bernoulli_distribution pa(0.3), pb(0.5), pc(0.05);
  for (size_t i = 0; i < bits; ++i) {
    if (pa(rng)) a.Set(i);
    if (pb(rng)) b.Set(i);
    if (pc(rng)) c.Set(i);
  }
  std::vector<uint64_t> counts;       // [count(a), a&b, a&b&c, into-count]
  std::vector<Bitmap> intersections;  // materialized a&b per kernel
  for (const CountingKernels* kernels : AvailableKernels()) {
    SCOPED_TRACE(kernels->name);
    ASSERT_TRUE(SetActiveKernel(kernels->name).ok());
    EXPECT_STREQ(ActiveKernelName(), kernels->name);
    Bitmap joined;
    std::vector<uint64_t> got = {
        a.Count(), a.AndCount(b), MultiAndCount({&a, &b, &c}),
        Bitmap::AndCountInto(a, b, &joined)};
    if (counts.empty()) {
      counts = got;
      intersections.push_back(joined);
    } else {
      EXPECT_EQ(got, counts);
      EXPECT_TRUE(joined == intersections.front());
    }
  }
}

// Builds a small synthetic database with deliberately correlated columns so
// multi-item queries have non-trivial counts.
TransactionDatabase MakeDatabase(size_t baskets, ItemId items,
                                 std::mt19937_64* rng) {
  TransactionDatabase db(items);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t row = 0; row < baskets; ++row) {
    std::vector<ItemId> basket;
    for (ItemId i = 0; i < items; ++i) {
      const double p = 0.08 + 0.5 * static_cast<double>(i % 5) / 5.0;
      if (unit(*rng) < p) basket.push_back(i);
    }
    // Item 0 implies item 1 half the time: correlated pair.
    if (!basket.empty() && basket[0] == 0 && unit(*rng) < 0.5) {
      basket.push_back(1);
    }
    EXPECT_TRUE(db.AddBasket(std::move(basket)).ok());
  }
  return db;
}

// Query stream shaped like a level batch: sibling runs sharing a prefix,
// plus singletons, duplicates, and queries whose prefix is itself queried.
std::vector<Itemset> MakeQueries(ItemId items, std::mt19937_64* rng) {
  std::vector<Itemset> queries;
  std::uniform_int_distribution<ItemId> pick(0, items - 1);
  for (ItemId i = 0; i < items; i += 3) queries.push_back(Itemset{i});
  for (int rep = 0; rep < 8; ++rep) {
    // One shared (k-1)-prefix, several extensions.
    std::vector<ItemId> prefix;
    const int k = 2 + rep % 3;
    while (static_cast<int>(prefix.size()) < k - 1) {
      ItemId it = pick(*rng);
      bool dup = false;
      for (ItemId p : prefix) dup |= (p == it);
      if (!dup) prefix.push_back(it);
    }
    queries.push_back(Itemset(prefix));  // prefix itself: self_query path
    for (int e = 0; e < 4; ++e) {
      ItemId ext = pick(*rng);
      bool dup = false;
      for (ItemId p : prefix) dup |= (p == ext);
      if (dup) continue;
      std::vector<ItemId> q = prefix;
      q.push_back(ext);
      queries.push_back(Itemset(q));
    }
  }
  queries.push_back(queries.front());  // duplicate query, distinct slot
  return queries;
}

TEST(BlockedExecutionTest, MatchesNaiveCountsForEveryKernelAndPartition) {
  KernelGuard guard;
  std::mt19937_64 rng(55);
  TransactionDatabase db = MakeDatabase(777, 18, &rng);
  VerticalIndex index(db);
  std::vector<Itemset> queries = MakeQueries(db.num_items(), &rng);

  std::vector<uint64_t> expected(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    expected[q] = index.CountAllPresent(queries[q]);
  }

  BlockedCountPlan plan = BlockedCountPlan::Build(queries);
  EXPECT_EQ(plan.num_queries, queries.size());
  EXPECT_FALSE(plan.groups.empty());

  for (const CountingKernels* kernels : AvailableKernels()) {
    SCOPED_TRACE(kernels->name);
    ASSERT_TRUE(SetActiveKernel(kernels->name).ok());
    // Whole-range execution.
    std::vector<uint64_t> counts(queries.size(), ~uint64_t{0});
    BlockedExecStats stats;
    ExecuteBlockedGroups(plan, 0, plan.groups.size(), index,
                         std::span<uint64_t>(counts), &stats);
    EXPECT_EQ(counts, expected);
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_EQ(stats.groups, plan.groups.size());
    // Arbitrary partition of the group axis (how shards parallelize).
    std::vector<uint64_t> partitioned(queries.size(), ~uint64_t{0});
    for (size_t begin = 0; begin < plan.groups.size(); begin += 2) {
      const size_t end = std::min(begin + 2, plan.groups.size());
      ExecuteBlockedGroups(plan, begin, end, index,
                           std::span<uint64_t>(partitioned), nullptr);
    }
    EXPECT_EQ(partitioned, expected);
  }
}

TEST(BlockedExecutionTest, WorkStatsCountLogicalWords) {
  // The kernel.* accounting is in logical words, so it must be identical
  // across kernels — that is what lets verify.sh diff the counters between
  // a forced-scalar and a dispatched run.
  KernelGuard guard;
  std::mt19937_64 rng(99);
  TransactionDatabase db = MakeDatabase(400, 12, &rng);
  VerticalIndex index(db);
  std::vector<Itemset> queries = MakeQueries(db.num_items(), &rng);
  BlockedCountPlan plan = BlockedCountPlan::Build(queries);

  std::vector<BlockedExecStats> per_kernel;
  for (const CountingKernels* kernels : AvailableKernels()) {
    ASSERT_TRUE(SetActiveKernel(kernels->name).ok());
    std::vector<uint64_t> counts(queries.size(), 0);
    BlockedExecStats stats;
    ExecuteBlockedGroups(plan, 0, plan.groups.size(), index,
                         std::span<uint64_t>(counts), &stats);
    per_kernel.push_back(stats);
  }
  ASSERT_FALSE(per_kernel.empty());
  for (const BlockedExecStats& stats : per_kernel) {
    EXPECT_EQ(stats.groups, per_kernel.front().groups);
    EXPECT_EQ(stats.queries, per_kernel.front().queries);
    EXPECT_EQ(stats.and_words, per_kernel.front().and_words);
    EXPECT_EQ(stats.block_and_words, per_kernel.front().block_and_words);
    EXPECT_EQ(stats.popcount_words, per_kernel.front().popcount_words);
  }
}

TEST(BlockedCountPlanTest, GroupsSiblingsAndDeduplicatesWork) {
  // {0,1,2}, {0,1,3}, {0,1,4} share prefix {0,1}; the pair {0,1} is a
  // size-2 query, so it lands in group {0} as extension 1; the singleton
  // {7} — queried twice — is a self group answering both slots with one
  // popcount.
  std::vector<Itemset> queries = {Itemset{0, 1, 2}, Itemset{0, 1},
                                  Itemset{0, 1, 3}, Itemset{7},
                                  Itemset{0, 1, 4}, Itemset{7}};
  BlockedCountPlan plan = BlockedCountPlan::Build(queries);
  ASSERT_EQ(plan.groups.size(), 3u);
  const BlockedCountPlan::Group& shared = plan.groups[0];
  EXPECT_EQ(shared.prefix, (Itemset{0, 1}));
  EXPECT_TRUE(shared.self_queries.empty());
  EXPECT_EQ(shared.ext_items, (std::vector<ItemId>{2, 3, 4}));
  EXPECT_EQ(shared.ext_queries, (std::vector<uint32_t>{0, 2, 4}));
  const BlockedCountPlan::Group& pair = plan.groups[1];
  EXPECT_EQ(pair.prefix, (Itemset{0}));
  EXPECT_EQ(pair.ext_items, (std::vector<ItemId>{1}));
  EXPECT_EQ(pair.ext_queries, (std::vector<uint32_t>{1}));
  const BlockedCountPlan::Group& single = plan.groups[2];
  EXPECT_EQ(single.prefix, (Itemset{7}));
  EXPECT_EQ(single.self_queries, (std::vector<uint32_t>{3, 5}));
  EXPECT_TRUE(single.ext_items.empty());
}

TEST(KernelSelectionTest, RejectsUnknownAndRestoresAuto) {
  KernelGuard guard;
  Status status = SetActiveKernel("vliw");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("unknown kernel"), std::string::npos);
  // A failed force leaves the previous selection in place.
  EXPECT_TRUE(SetActiveKernel("scalar").ok());
  EXPECT_FALSE(SetActiveKernel("vliw").ok());
  EXPECT_STREQ(ActiveKernelName(), "scalar");
  EXPECT_EQ(RequestedKernelName(), "scalar");
  ASSERT_TRUE(SetActiveKernel("auto").ok());
  EXPECT_EQ(RequestedKernelName(), "auto");
}

}  // namespace
}  // namespace corrmine
