#include <cmath>

#include <gtest/gtest.h>

#include "stats/chi_squared_distribution.h"
#include "stats/gamma.h"

namespace corrmine::stats {
namespace {

TEST(LogGammaTest, IntegerValuesMatchFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-10);
}

TEST(LogGammaTest, HalfIntegerValue) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-12);
}

TEST(LogGammaTest, RecurrenceHolds) {
  // Gamma(x+1) = x * Gamma(x) across a range, including x < 0.5 where the
  // reflection formula kicks in.
  for (double x : {0.1, 0.3, 0.9, 2.7, 10.4, 55.5, 171.0}) {
    EXPECT_NEAR(LogGamma(x + 1.0), std::log(x) + LogGamma(x), 1e-9)
        << "x = " << x;
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 700.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ComplementsSumToOne) {
  for (double a : {0.5, 1.0, 3.5, 20.0}) {
    for (double x : {0.01, 0.5, 1.0, 4.0, 25.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 1.0, 2.5, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
}

TEST(LogBinomialTest, MatchesDirectComputation) {
  EXPECT_NEAR(std::exp(LogBinomial(10, 3)), 120.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(52, 5)), 2598960.0, 1e-3);
  EXPECT_NEAR(LogBinomial(7, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(7, 7), 0.0, 1e-12);
}

// --- Chi-squared distribution ---

TEST(ChiSquaredDistributionTest, PaperCutoffAt95Percent) {
  // The cutoff the paper quotes throughout: 3.84 at the 95% level, 1 dof.
  EXPECT_NEAR(ChiSquaredCriticalValue(0.95, 1), 3.841458820694124, 1e-8);
}

TEST(ChiSquaredDistributionTest, StandardCriticalValues) {
  // Textbook chi-squared table entries.
  EXPECT_NEAR(ChiSquaredCriticalValue(0.95, 2), 5.991464547107979, 1e-8);
  EXPECT_NEAR(ChiSquaredCriticalValue(0.95, 5), 11.070497693516351, 1e-8);
  EXPECT_NEAR(ChiSquaredCriticalValue(0.99, 1), 6.634896601021213, 1e-8);
  EXPECT_NEAR(ChiSquaredCriticalValue(0.90, 10), 15.987179172105261, 1e-8);
}

TEST(ChiSquaredDistributionTest, CdfQuantileRoundTrip) {
  for (int dof : {1, 2, 3, 7, 30, 100}) {
    ChiSquaredDistribution dist(dof);
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.95, 0.999}) {
      double x = dist.Quantile(p);
      EXPECT_NEAR(dist.Cdf(x), p, 1e-9) << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(ChiSquaredDistributionTest, SurvivalComplementsCdf) {
  ChiSquaredDistribution dist(3);
  for (double x : {0.0, 0.5, 2.0, 10.0, 50.0}) {
    EXPECT_NEAR(dist.Cdf(x) + dist.Survival(x), 1.0, 1e-12);
  }
}

TEST(ChiSquaredDistributionTest, OneDofCdfMatchesNormalFold) {
  // If Z ~ N(0,1), Z^2 ~ chi2(1): P(Z^2 <= x) = 2 Phi(sqrt(x)) - 1.
  ChiSquaredDistribution dist(1);
  for (double x : {0.1, 1.0, 3.84, 9.0}) {
    double z = std::sqrt(x);
    double expected = std::erf(z / std::sqrt(2.0));
    EXPECT_NEAR(dist.Cdf(x), expected, 1e-10);
  }
}

TEST(ChiSquaredDistributionTest, PValueHelper) {
  EXPECT_NEAR(ChiSquaredPValue(3.841458820694124, 1), 0.05, 1e-8);
  EXPECT_GT(ChiSquaredPValue(0.9, 1), 0.05);   // Paper's Example 3.
  EXPECT_LT(ChiSquaredPValue(2006.0, 1), 1e-6);  // Paper's Example 4.
}

TEST(ChiSquaredDistributionTest, MeanIsDof) {
  // Median sanity: CDF(dof) is a bit over 0.5 for small dof.
  for (int dof : {1, 4, 16}) {
    ChiSquaredDistribution dist(dof);
    EXPECT_GT(dist.Cdf(static_cast<double>(dof)), 0.5);
    EXPECT_LT(dist.Cdf(static_cast<double>(dof)), 0.75);
  }
}

}  // namespace
}  // namespace corrmine::stats
