#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/random_walk_miner.h"
#include "test_util.h"

namespace corrmine {
namespace {

std::set<Itemset> SignificantSets(const MiningResult& result) {
  std::set<Itemset> sets;
  for (const auto& rule : result.significant) sets.insert(rule.itemset);
  return sets;
}

TEST(RandomWalkTest, FindsPlantedCorrelation) {
  auto db = testing::RandomCorrelatedDatabase(5, 500, 0.95, 99);
  BitmapCountProvider provider(db);
  RandomWalkOptions options;
  options.num_walks = 300;
  options.miner.support.min_count = 5;
  options.miner.support.cell_fraction = 0.26;
  auto result =
      MineCorrelationsRandomWalk(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SignificantSets(*result).count(Itemset{0, 1}));
}

TEST(RandomWalkTest, ResultsAreSupportedCorrelatedAndMinimal) {
  auto db = testing::RandomCorrelatedDatabase(6, 400, 0.8, 55);
  BitmapCountProvider provider(db);
  RandomWalkOptions options;
  options.num_walks = 400;
  options.miner.support.min_count = 4;
  options.miner.support.cell_fraction = 0.26;
  auto result =
      MineCorrelationsRandomWalk(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  for (const CorrelationRule& rule : result->significant) {
    auto table = ContingencyTable::Build(provider, rule.itemset);
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(HasCellSupport(*table, options.miner.support));
    EXPECT_TRUE(ComputeChiSquared(*table, options.miner.chi2)
                    .SignificantAt(options.miner.confidence_level));
    // Minimality among supported sets: no immediate subset of size >= 2 is
    // both supported and correlated.
    if (rule.itemset.size() > 2) {
      for (const Itemset& subset : rule.itemset.SubsetsMissingOne()) {
        auto sub = ContingencyTable::Build(provider, subset);
        ASSERT_TRUE(sub.ok());
        bool supported = HasCellSupport(*sub, options.miner.support);
        bool correlated = ComputeChiSquared(*sub, options.miner.chi2)
                              .SignificantAt(options.miner.confidence_level);
        EXPECT_FALSE(supported && correlated)
            << rule.itemset.ToString() << " not minimal: subset "
            << subset.ToString() << " is supported and correlated";
      }
    }
  }
}

TEST(RandomWalkTest, EnoughWalksRecoverLevelWiseBorder) {
  // With many walks the random-walk miner should find at least the sets the
  // level-wise algorithm outputs (its SIG sets are reachable by chains of
  // supported, uncorrelated sets).
  auto db = testing::RandomCorrelatedDatabase(5, 300, 0.9, 77);
  BitmapCountProvider provider(db);
  MinerOptions miner;
  miner.support.min_count = 3;
  miner.support.cell_fraction = 0.26;
  auto level_wise = MineCorrelations(provider, db.num_items(), miner);
  ASSERT_TRUE(level_wise.ok());

  RandomWalkOptions options;
  options.miner = miner;
  options.num_walks = 2000;
  auto walks = MineCorrelationsRandomWalk(provider, db.num_items(), options);
  ASSERT_TRUE(walks.ok());
  auto walk_sets = SignificantSets(*walks);
  for (const Itemset& s : SignificantSets(*level_wise)) {
    EXPECT_TRUE(walk_sets.count(s)) << "missed " << s.ToString();
  }
}

TEST(RandomWalkTest, DeterministicForFixedSeed) {
  auto db = testing::RandomCorrelatedDatabase(5, 200, 0.9, 31);
  BitmapCountProvider provider(db);
  RandomWalkOptions options;
  options.num_walks = 100;
  options.seed = 4242;
  auto a = MineCorrelationsRandomWalk(provider, db.num_items(), options);
  auto b = MineCorrelationsRandomWalk(provider, db.num_items(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SignificantSets(*a), SignificantSets(*b));
}

TEST(RandomWalkTest, InputValidation) {
  TransactionDatabase empty(3);
  ScanCountProvider provider(empty);
  EXPECT_TRUE(MineCorrelationsRandomWalk(provider, 3, RandomWalkOptions())
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(1, 50, 2);
  ScanCountProvider one_item(db);
  EXPECT_TRUE(MineCorrelationsRandomWalk(one_item, 1, RandomWalkOptions())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine
