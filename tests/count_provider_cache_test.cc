#include "itemset/count_provider.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corrmine {
namespace {

// Every subset of `universe` with 1 <= size <= max_size, in a deterministic
// order that mimics the miner's query stream (grouped by shared prefixes).
std::vector<Itemset> AllSubsets(ItemId universe, size_t max_size) {
  std::vector<Itemset> out;
  for (uint32_t mask = 1; mask < (1u << universe); ++mask) {
    Itemset s;
    for (ItemId i = 0; i < universe; ++i) {
      if (mask & (1u << i)) s = s.WithItem(i);
    }
    if (s.size() <= max_size) out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(CachedCountProviderTest, MatchesScanProviderOnEverySubset) {
  auto db = testing::RandomCorrelatedDatabase(8, 300, 0.8, 101);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());
  ASSERT_EQ(cached.num_baskets(), scan.num_baskets());
  for (const Itemset& s : AllSubsets(8, 5)) {
    EXPECT_EQ(cached.CountAllPresent(s), scan.CountAllPresent(s))
        << s.ToString();
  }
}

TEST(CachedCountProviderTest, RepeatQueriesHitTheCache) {
  auto db = testing::RandomIndependentDatabase(6, 200, 7);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());
  // Sibling candidates sharing the prefix {0,1}: the second and later
  // queries reuse the memoized intersection.
  for (ItemId last = 2; last < 6; ++last) {
    cached.CountAllPresent(Itemset{0, 1, last});
  }
  auto stats = cached.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.misses, 1u);  // {0,1} built once...
  EXPECT_EQ(stats.hits, 3u);    // ...and reused three times.
  EXPECT_EQ(cached.cache_size(), 1u);
}

TEST(CachedCountProviderTest, SavesAndWordOpsOnSiblingRuns) {
  auto db = testing::RandomIndependentDatabase(10, 500, 13);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());
  // A level-3+ style stream: every size-3 and size-4 subset. Counts must
  // stay exact while the actual AND work drops below the uncached chain.
  for (const Itemset& s : AllSubsets(10, 4)) {
    if (s.size() < 3) continue;
    EXPECT_EQ(cached.CountAllPresent(s), scan.CountAllPresent(s));
  }
  auto stats = cached.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LT(stats.and_word_ops, stats.uncached_and_word_ops);
}

TEST(CachedCountProviderTest, ExactWhenCacheIsFull) {
  auto db = testing::RandomCorrelatedDatabase(8, 250, 0.7, 23);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index(), /*max_entries=*/2);
  for (const Itemset& s : AllSubsets(8, 4)) {
    EXPECT_EQ(cached.CountAllPresent(s), scan.CountAllPresent(s))
        << s.ToString();
  }
  EXPECT_LE(cached.cache_size(), 2u);
}

TEST(CachedCountProviderTest, ClearCacheDropsEntriesNotAnswers) {
  auto db = testing::RandomIndependentDatabase(6, 150, 31);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());
  uint64_t before = cached.CountAllPresent(Itemset{0, 1, 2});
  EXPECT_GT(cached.cache_size(), 0u);
  cached.ClearCache();
  EXPECT_EQ(cached.cache_size(), 0u);
  EXPECT_EQ(cached.CountAllPresent(Itemset{0, 1, 2}), before);
}

// Regression: the cache had no invalidation story, so growing the
// underlying index in place (delta ingestion) silently served counts over
// the OLD rows. The append below stays within the same 64-bit word count —
// the stale prefix bitmap has the right size and simply reads 0 for every
// new row, the nastiest variant of the bug — so only epoch invalidation
// can produce the fresh answer.
TEST(CachedCountProviderTest, AdvanceEpochInvalidatesStalePrefixes) {
  auto db = testing::RandomIndependentDatabase(6, 40, 77);
  VerticalIndex index(db);
  CachedCountProvider cached(index);
  const Itemset query{0, 1, 2};
  // ScanCountProvider reads `db` live, so pin the pre-append count now.
  const uint64_t count_before = ScanCountProvider(db).CountAllPresent(query);
  EXPECT_EQ(cached.CountAllPresent(query), count_before);
  EXPECT_EQ(cached.epoch(), 0u);

  // 40 -> 50 rows: both round up to one 64-bit word per bitmap, and every
  // new row contains the queried items.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.AddBasket({0, 1, 2}).ok());
  }
  index.AppendFrom(db, index.num_baskets());
  cached.AdvanceEpoch();
  EXPECT_EQ(cached.epoch(), 1u);

  ScanCountProvider scan_after(db);
  EXPECT_EQ(scan_after.CountAllPresent(query), count_before + 10);
  EXPECT_EQ(cached.CountAllPresent(query),
            scan_after.CountAllPresent(query))
      << "stale prefix bitmap served across an epoch bump";
  // The prefix had to be rebuilt: the stale entry may not count as a hit.
  EXPECT_EQ(cached.stats().misses, 2u);
}

// Multi-epoch churn with untouched entries: a prefix queried only in epoch
// 0 must still be re-resolved freshly when it next appears epochs later.
TEST(CachedCountProviderTest, EntriesStaleAcrossSeveralEpochsStayExact) {
  auto db = testing::RandomCorrelatedDatabase(8, 100, 0.8, 9);
  VerticalIndex index(db);
  CachedCountProvider cached(index);
  std::vector<Itemset> queries = AllSubsets(8, 3);
  for (const Itemset& s : queries) cached.CountAllPresent(s);

  for (int epoch = 1; epoch <= 3; ++epoch) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.AddBasket({0, static_cast<ItemId>(epoch), 7}).ok());
    }
    index.AppendFrom(db, index.num_baskets());
    cached.AdvanceEpoch();
  }
  ScanCountProvider scan(db);
  for (const Itemset& s : queries) {
    EXPECT_EQ(cached.CountAllPresent(s), scan.CountAllPresent(s))
        << s.ToString();
  }
}

TEST(CachedCountProviderTest, ConcurrentQueriesStayExact) {
  auto db = testing::RandomCorrelatedDatabase(9, 400, 0.85, 47);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());
  std::vector<Itemset> queries = AllSubsets(9, 4);
  std::vector<uint64_t> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected[i] = scan.CountAllPresent(queries[i]);
  }
  // Four threads hammer overlapping query ranges so cache fills race.
  std::vector<std::vector<uint64_t>> got(4,
                                         std::vector<uint64_t>(queries.size()));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < queries.size(); ++i) {
        got[t][i] = cached.CountAllPresent(queries[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < 4; ++t) {
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(got[t][i], expected[i])
          << "thread " << t << " query " << queries[i].ToString();
    }
  }
}

}  // namespace
}  // namespace corrmine
