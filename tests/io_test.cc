#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "io/table_printer.h"
#include "io/transaction_io.h"
#include "test_util.h"

namespace corrmine::io {
namespace {

TEST(TransactionIoTest, ParsesIdsAndComments) {
  auto db = ParseTransactions("# header\n1 2 3\n\n0 2\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_baskets(), 3u);  // Blank line = empty basket.
  EXPECT_EQ(db->basket(0), (std::vector<ItemId>{1, 2, 3}));
  EXPECT_TRUE(db->basket(1).empty());
  EXPECT_EQ(db->basket(2), (std::vector<ItemId>{0, 2}));
  EXPECT_EQ(db->num_items(), 4u);
}

TEST(TransactionIoTest, HintExpandsItemSpace) {
  auto db = ParseTransactions("0 1\n", /*num_items_hint=*/10);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 10u);
}

TEST(TransactionIoTest, RejectsGarbage) {
  EXPECT_TRUE(ParseTransactions("1 two 3\n").status().IsCorruption());
  EXPECT_TRUE(ParseTransactions("99999999999\n").status().IsOutOfRange());
}

TEST(TransactionIoTest, FileRoundTrip) {
  auto db = corrmine::testing::RandomIndependentDatabase(6, 50, 9);
  std::string path = ::testing::TempDir() + "/corrmine_io_test.txt";
  ASSERT_TRUE(WriteTransactionFile(db, path).ok());
  auto loaded = ReadTransactionFile(path, db.num_items());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_baskets(), db.num_baskets());
  for (size_t i = 0; i < db.num_baskets(); ++i) {
    EXPECT_EQ(loaded->basket(i), db.basket(i));
  }
  std::remove(path.c_str());
}

TEST(TransactionIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadTransactionFile("/nonexistent/path/x.txt").status().IsIOError());
}

TEST(TransactionIoTest, NamedTransactions) {
  auto db = ParseNamedTransactions("tea coffee\ncoffee doughnut\n");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_baskets(), 2u);
  EXPECT_EQ(db->num_items(), 3u);
  auto coffee = db->dictionary().Get("coffee");
  ASSERT_TRUE(coffee.ok());
  EXPECT_EQ(db->ItemCount(*coffee), 2u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1.5"});
  table.AddRow({"b", "200"});
  std::string out = table.Render();
  // Header first, underline second.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numeric cells right-aligned: "200" ends at the same column as "1.5".
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    lines.push_back(out.substr(pos, eol - pos));
    pos = eol + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[2].size(), lines[3].size());
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatPercent(0.166, 1), "16.6");
  EXPECT_EQ(FormatPercent(1.0, 0), "100");
}

}  // namespace
}  // namespace corrmine::io
