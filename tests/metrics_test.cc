#include "common/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/chi_squared_miner.h"
#include "core/chi_squared_test.h"
#include "core/contingency_table.h"
#include "datagen/quest_generator.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

TEST(CounterTest, AddsAndSums) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  c->Add();
  c->Add(41);
  if constexpr (kMetricsEnabled) {
    EXPECT_EQ(c->Value(), 42u);
  } else {
    EXPECT_EQ(c->Value(), 0u);
  }
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAddsPerThread; ++i) c->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  if constexpr (kMetricsEnabled) {
    EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
  } else {
    EXPECT_EQ(c->Value(), 0u);
  }
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(7);
  g->Set(-3);
  EXPECT_EQ(g->Value(), kMetricsEnabled ? -3 : 0);
}

TEST(HistogramTest, TracksCountSumMinMax) {
  if constexpr (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist");
  h->Observe(1);
  h->Observe(100);
  h->Observe(7);
  Histogram::Data data = h->Value();
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.sum, 108u);
  EXPECT_EQ(data.min, 1u);
  EXPECT_EQ(data.max, 100u);
  uint64_t bucket_total = 0;
  for (uint64_t b : data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 3u);
}

TEST(RegistryTest, SameNameSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
  EXPECT_EQ(registry.GetHistogram("x"), registry.GetHistogram("x"));
}

TEST(RegistryTest, ResetKeepsHandlesValidAndZeroes) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reset.me");
  c->Add(5);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Add(2);  // Handle still live after Reset.
  EXPECT_EQ(c->Value(), kMetricsEnabled ? 2u : 0u);
}

TEST(RegistryTest, ToJsonHasSchemaSections) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(3);
  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"metrics_compiled\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  // Single line by construction (grep-comparable).
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(PhaseTimerTest, RecordsHistogramCounterAndSpan) {
  if constexpr (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry registry;
  {
    PhaseTimer timer(&registry, "phase");
  }
  {
    PhaseTimer timer(&registry, "phase");
    timer.Stop();
    timer.Stop();  // Idempotent.
  }
  MetricsRegistry::Snapshot snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("phase.calls"), 2u);
  EXPECT_EQ(snap.histograms.at("phase.ns").count, 2u);
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans[0].name, "phase");
}

// --- Instrumentation determinism across thread counts -----------------

datagen::QuestOptions SmallQuest() {
  datagen::QuestOptions quest;
  quest.num_transactions = 2000;
  quest.num_items = 60;
  quest.avg_transaction_size = 8.0;
  quest.num_patterns = 15;
  return quest;
}

MinerOptions SmallMinerOptions() {
  MinerOptions options;
  options.support.min_count = 20;
  options.support.cell_fraction = 0.25;
  return options;
}

TEST(MinerMetricsTest, CacheCountersNonzeroAndThreadCountInvariant) {
  auto db = datagen::GenerateQuestData(SmallQuest());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  BitmapCountProvider provider(*db);

  // One fresh cache per run: the build-once memoization makes the hit/miss
  // accounting a function of the query stream alone, so any thread count
  // must reproduce the sequential numbers exactly.
  CachedCountProvider::CacheStats baseline;
  for (int threads : {1, 4}) {
    CachedCountProvider cached(provider.index());
    MinerOptions options = SmallMinerOptions();
    options.num_threads = threads;
    MetricsRegistry registry;
    options.metrics = &registry;
    auto result = MineCorrelations(cached, db->num_items(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    CachedCountProvider::CacheStats stats = cached.stats();
    EXPECT_GT(stats.queries, 0u);
    EXPECT_GT(stats.hits, 0u) << "prefix cache never hit on quest workload";
    EXPECT_GT(stats.misses, 0u);
    EXPECT_EQ(stats.overflow_builds, 0u);
    EXPECT_LT(stats.and_word_ops, stats.uncached_and_word_ops)
        << "cache did not save AND work";
    if (threads == 1) {
      baseline = stats;
    } else {
      EXPECT_EQ(stats.queries, baseline.queries);
      EXPECT_EQ(stats.hits, baseline.hits);
      EXPECT_EQ(stats.misses, baseline.misses);
      EXPECT_EQ(stats.and_word_ops, baseline.and_word_ops);
      EXPECT_EQ(stats.uncached_and_word_ops, baseline.uncached_and_word_ops);
    }
  }
}

TEST(MinerMetricsTest, RegistryCountersMatchLevelStats) {
  if constexpr (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  auto db = datagen::GenerateQuestData(SmallQuest());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  BitmapCountProvider provider(*db);
  MinerOptions options = SmallMinerOptions();
  MetricsRegistry registry;
  options.metrics = &registry;
  auto result = MineCorrelations(provider, db->num_items(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->levels.empty());

  uint64_t candidates = 0, chi2_tests = 0, sig = 0, masked = 0;
  for (const LevelStats& level : result->levels) {
    candidates += level.candidates;
    chi2_tests += level.chi2_tests;
    sig += level.significant;
    masked += level.masked_cells;
    EXPECT_EQ(level.chi2_tests, level.candidates - level.discards);
  }
  MetricsRegistry::Snapshot snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("miner.candidates"), candidates);
  EXPECT_EQ(snap.counters.at("miner.chi2_tests"), chi2_tests);
  EXPECT_EQ(snap.counters.at("miner.sig"), sig);
  EXPECT_EQ(snap.counters.at("miner.masked_cells"), masked);
  EXPECT_EQ(snap.counters.at("miner.runs"), 1u);
  EXPECT_EQ(snap.counters.at("miner.levels"), result->levels.size());
  EXPECT_GE(snap.histograms.at("miner.level.ns").count,
            result->levels.size());
  // The level-boundary peak-RSS gauge: set after every completed level, so
  // a finished run always carries the process high-water mark.
  ASSERT_EQ(snap.gauges.count("mem.peak_rss_bytes"), 1u);
  EXPECT_GT(snap.gauges.at("mem.peak_rss_bytes"), 0);
}

// --- §3.3 low-expectation masking accounting ---------------------------

TEST(MaskedCellsTest, HandBuiltLowExpectationPairIsMasked) {
  // n=100, both items occur 5 times, never together: E[both present] =
  // 100 * 0.05 * 0.05 = 0.25 < 1.0, so exactly that one cell is masked at
  // min_expected_cell = 1.0 (the other three expectations are 4.75, 4.75,
  // and 90.25).
  TransactionDatabase db(2);
  for (int i = 0; i < 5; ++i) db.AddBasket({0});
  for (int i = 0; i < 5; ++i) db.AddBasket({1});
  for (int i = 0; i < 90; ++i) db.AddBasket({});
  BitmapCountProvider provider(db);

  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ChiSquaredOptions chi2_options;
  chi2_options.min_expected_cell = 1.0;
  ChiSquaredResult chi2 = ComputeChiSquared(*table, chi2_options);
  EXPECT_EQ(chi2.validity.masked_cells, 1u);

  ChiSquaredOptions unmasked;
  unmasked.min_expected_cell = 0.0;
  EXPECT_EQ(ComputeChiSquared(*table, unmasked).validity.masked_cells, 0u);
}

TEST(MaskedCellsTest, MinerLevelStatsCarryMaskedCells) {
  // Same fixture, but counted through the miner: force the pair to be a
  // candidate (support threshold at its observed cell counts) and check
  // the masking shows up in LevelStats.
  TransactionDatabase db(2);
  for (int i = 0; i < 5; ++i) db.AddBasket({0});
  for (int i = 0; i < 5; ++i) db.AddBasket({1});
  for (int i = 0; i < 90; ++i) db.AddBasket({});
  BitmapCountProvider provider(db);

  MinerOptions options;
  options.support.min_count = 1;
  options.support.cell_fraction = 0.5;  // 2 of 4 cells ≥ 1 suffices.
  options.level_one = LevelOnePruning::kNone;
  options.chi2.min_expected_cell = 1.0;
  MetricsRegistry registry;
  options.metrics = &registry;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->levels.size(), 1u);
  EXPECT_EQ(result->levels[0].chi2_tests, 1u);
  EXPECT_EQ(result->levels[0].masked_cells, 1u);
}

}  // namespace
}  // namespace corrmine
