// Tests for multiple-testing corrections, the correlated-fraction sampler
// and the report renderer.

#include <gtest/gtest.h>

#include "core/chi_squared_test.h"
#include "core/fraction_estimator.h"
#include "core/report.h"
#include "stats/multiple_testing.h"
#include "test_util.h"

namespace corrmine {
namespace {

// --- Multiple testing ---

TEST(MultipleTestingTest, BonferroniThreshold) {
  EXPECT_DOUBLE_EQ(stats::BonferroniThreshold(0.05, 45), 0.05 / 45.0);
  EXPECT_DOUBLE_EQ(stats::BonferroniThreshold(0.05, 0), 0.05);
}

TEST(MultipleTestingTest, BenjaminiHochbergTextbookExample) {
  // Classic worked example: m = 10, q = 0.25.
  std::vector<double> p = {0.010, 0.013, 0.014, 0.190, 0.350,
                           0.500, 0.630, 0.670, 0.750, 0.810};
  auto rejected = stats::BenjaminiHochberg(p, 0.25);
  ASSERT_TRUE(rejected.ok());
  // Thresholds (k/10)*0.25: 0.025, 0.05, 0.075, 0.1, ... Largest k with
  // p_(k) <= threshold is k = 3.
  EXPECT_TRUE((*rejected)[0]);
  EXPECT_TRUE((*rejected)[1]);
  EXPECT_TRUE((*rejected)[2]);
  for (size_t i = 3; i < p.size(); ++i) {
    EXPECT_FALSE((*rejected)[i]) << i;
  }
}

TEST(MultipleTestingTest, BhStepUpRescuesLaterPValues) {
  // p = {0.01, 0.02, 0.03} at q = 0.05: k=3 threshold 0.05*3/3 = 0.05 >=
  // 0.03, so ALL are rejected even though 0.03 > 0.05/3.
  auto rejected = stats::BenjaminiHochberg({0.01, 0.02, 0.03}, 0.05);
  ASSERT_TRUE(rejected.ok());
  EXPECT_TRUE((*rejected)[0]);
  EXPECT_TRUE((*rejected)[1]);
  EXPECT_TRUE((*rejected)[2]);
}

TEST(MultipleTestingTest, AdjustedPValuesMonotoneAndCorrect) {
  std::vector<double> p = {0.01, 0.04, 0.03, 0.9};
  auto adjusted = stats::BenjaminiHochbergAdjusted(p);
  ASSERT_TRUE(adjusted.ok());
  // Sorted p: 0.01, 0.03, 0.04, 0.9 -> scaled: 0.04, 0.06, 0.0533.., 0.9;
  // running min from the top: q_(1)=0.04, q_(2)=0.0533.., q_(3)=0.0533..,
  // q_(4)=0.9.
  EXPECT_NEAR((*adjusted)[0], 0.04, 1e-12);
  EXPECT_NEAR((*adjusted)[2], 0.16 / 3.0, 1e-12);  // p=0.03 at rank 2.
  EXPECT_NEAR((*adjusted)[1], 0.16 / 3.0, 1e-12);  // p=0.04 at rank 3.
  EXPECT_NEAR((*adjusted)[3], 0.9, 1e-12);
  // Consistency: adjusted <= 1 and rejection at level q matches
  // BenjaminiHochberg.
  auto rejected = stats::BenjaminiHochberg(p, 0.06);
  ASSERT_TRUE(rejected.ok());
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ((*rejected)[i], (*adjusted)[i] <= 0.06) << i;
  }
}

TEST(MultipleTestingTest, Validation) {
  EXPECT_TRUE(stats::BenjaminiHochberg({}, 0.1).status().IsInvalidArgument());
  EXPECT_TRUE(
      stats::BenjaminiHochberg({0.5}, 1.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      stats::BenjaminiHochberg({1.5}, 0.1).status().IsInvalidArgument());
  EXPECT_TRUE(
      stats::BenjaminiHochbergAdjusted({-0.1}).status().IsInvalidArgument());
}

// --- Correlated-fraction estimator ---

TEST(FractionEstimatorTest, NearZeroOnIndependentData) {
  auto db = testing::RandomIndependentDatabase(12, 400, 3);
  BitmapCountProvider provider(db);
  FractionEstimateOptions options;
  options.samples = 500;
  auto estimate =
      EstimateCorrelatedFraction(provider, db.num_items(), 2, options);
  ASSERT_TRUE(estimate.ok());
  // Per-test level 0.95 -> ~5% false positive rate expected.
  EXPECT_LT(estimate->fraction, 0.15);
  EXPECT_GT(estimate->std_error, 0.0);
}

TEST(FractionEstimatorTest, HighOnStronglyCorrelatedData) {
  // All items copy item 0: every pair correlated.
  datagen::Rng rng(9);
  TransactionDatabase db(6);
  for (int b = 0; b < 400; ++b) {
    std::vector<ItemId> basket;
    bool on = rng.NextBernoulli(0.5);
    for (ItemId i = 0; i < 6; ++i) {
      if (on != rng.NextBernoulli(0.1)) basket.push_back(i);
    }
    ASSERT_TRUE(db.AddBasket(std::move(basket)).ok());
  }
  BitmapCountProvider provider(db);
  FractionEstimateOptions options;
  options.samples = 300;
  auto estimate =
      EstimateCorrelatedFraction(provider, db.num_items(), 2, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate->fraction, 0.9);
}

TEST(FractionEstimatorTest, MatchesExhaustiveCountOnSmallSpace) {
  auto db = testing::RandomCorrelatedDatabase(8, 300, 0.8, 21);
  BitmapCountProvider provider(db);
  // Exhaustive fraction over all 28 pairs.
  int correlated = 0;
  for (ItemId a = 0; a < 8; ++a) {
    for (ItemId b = a + 1; b < 8; ++b) {
      auto table = ContingencyTable::Build(provider, Itemset{a, b});
      ASSERT_TRUE(table.ok());
      if (ComputeChiSquared(*table).SignificantAt(0.95)) ++correlated;
    }
  }
  double truth = correlated / 28.0;
  FractionEstimateOptions options;
  options.samples = 4000;
  auto estimate =
      EstimateCorrelatedFraction(provider, db.num_items(), 2, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->fraction, truth, 4 * estimate->std_error + 0.02);
}

TEST(FractionEstimatorTest, Validation) {
  auto db = testing::RandomIndependentDatabase(4, 50, 1);
  BitmapCountProvider provider(db);
  EXPECT_TRUE(EstimateCorrelatedFraction(provider, 4, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(EstimateCorrelatedFraction(provider, 4, 5)
                  .status()
                  .IsInvalidArgument());
  FractionEstimateOptions bad;
  bad.samples = 0;
  EXPECT_TRUE(EstimateCorrelatedFraction(provider, 4, 2, bad)
                  .status()
                  .IsInvalidArgument());
}

// --- Report rendering ---

TEST(ReportTest, ContainsSectionsAndNames) {
  auto db = testing::RandomCorrelatedDatabase(5, 400, 0.95, 42);
  db.dictionary().GetOrAdd("alpha");
  db.dictionary().GetOrAdd("beta");
  db.dictionary().GetOrAdd("gamma");
  db.dictionary().GetOrAdd("delta");
  db.dictionary().GetOrAdd("epsilon");
  BitmapCountProvider provider(db);
  MinerOptions miner;
  miner.support.min_count = 5;
  miner.support.cell_fraction = 0.26;
  miner.keep_frontier = true;
  auto result = MineCorrelations(provider, db.num_items(), miner);
  ASSERT_TRUE(result.ok());
  std::string report = RenderReport(*result, &db.dictionary());
  EXPECT_NE(report.find("Search statistics"), std::string::npos);
  EXPECT_NE(report.find("Strongest correlations"), std::string::npos);
  EXPECT_NE(report.find("alpha + beta"), std::string::npos);
  EXPECT_NE(report.find("frontier"), std::string::npos);
}

TEST(ReportTest, FdrFilterReducesFindings) {
  auto db = testing::RandomCorrelatedDatabase(8, 300, 0.5, 11);
  BitmapCountProvider provider(db);
  MinerOptions miner;
  miner.support.min_count = 3;
  miner.support.cell_fraction = 0.26;
  auto result = MineCorrelations(provider, db.num_items(), miner);
  ASSERT_TRUE(result.ok());
  ReportOptions strict;
  strict.fdr_level = 1e-6;
  std::string filtered = RenderReport(*result, nullptr, strict);
  EXPECT_NE(filtered.find("FDR"), std::string::npos);
}

TEST(ReportTest, EmptyResultRendersCleanly) {
  MiningResult empty;
  std::string report = RenderReport(empty, nullptr);
  EXPECT_NE(report.find("0 findings"), std::string::npos);
}

}  // namespace
}  // namespace corrmine
