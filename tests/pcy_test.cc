#include <map>

#include <gtest/gtest.h>

#include "mining/apriori.h"
#include "mining/pcy.h"
#include "test_util.h"

namespace corrmine {
namespace {

std::map<Itemset, uint64_t> ToMap(const std::vector<FrequentItemset>& sets) {
  std::map<Itemset, uint64_t> m;
  for (const FrequentItemset& f : sets) m.emplace(f.itemset, f.count);
  return m;
}

class PcyEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PcyEquivalence, MatchesApriori) {
  auto db = testing::RandomCorrelatedDatabase(8, 200, 0.8, GetParam());
  BitmapCountProvider provider(db);
  AprioriOptions apriori_opts;
  apriori_opts.min_support_fraction = 0.1;
  auto apriori = MineFrequentItemsets(provider, db.num_items(), apriori_opts);
  ASSERT_TRUE(apriori.ok());

  PcyOptions pcy_opts;
  pcy_opts.min_support_fraction = 0.1;
  auto pcy = MineFrequentItemsetsPcy(db, pcy_opts);
  ASSERT_TRUE(pcy.ok());

  EXPECT_EQ(ToMap(*pcy), ToMap(*apriori));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcyEquivalence,
                         ::testing::Values(10, 20, 30, 40));

TEST(PcyTest, TinyBucketArrayStillCorrect) {
  // Heavy collisions weaken pruning but must not change the result.
  auto db = testing::RandomCorrelatedDatabase(6, 150, 0.7, 3);
  PcyOptions few_buckets;
  few_buckets.min_support_fraction = 0.1;
  few_buckets.num_hash_buckets = 4;
  PcyOptions many_buckets;
  many_buckets.min_support_fraction = 0.1;
  many_buckets.num_hash_buckets = 1 << 16;
  auto a = MineFrequentItemsetsPcy(db, few_buckets);
  auto b = MineFrequentItemsetsPcy(db, many_buckets);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToMap(*a), ToMap(*b));
}

TEST(PcyTest, StatsShowBucketPruning) {
  auto db = testing::RandomIndependentDatabase(12, 300, 6);
  PcyOptions options;
  options.min_support_fraction = 0.25;
  options.num_hash_buckets = 1 << 12;
  PcyStats stats;
  auto result = MineFrequentItemsetsPcy(db, options, &stats);
  ASSERT_TRUE(result.ok());
  // The bucket filter can only reduce the candidate set.
  EXPECT_LE(stats.pair_candidates_after_bucket,
            stats.pair_candidates_item_filter);
}

TEST(PcyTest, InputValidation) {
  TransactionDatabase empty(2);
  EXPECT_TRUE(MineFrequentItemsetsPcy(empty, PcyOptions())
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(3, 20, 1);
  PcyOptions bad;
  bad.num_hash_buckets = 0;
  EXPECT_TRUE(
      MineFrequentItemsetsPcy(db, bad).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine
