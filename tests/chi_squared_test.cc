#include <algorithm>

#include <gtest/gtest.h>

#include "core/chi_squared_test.h"
#include "datagen/rng.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(ChiSquaredTest, PaperExampleThreeValue) {
  // Example 3 of the paper: 9 baskets, O(a)=3, O(b)=5, O(ab)=1 gives
  // chi-squared 0.267 + 0.333 + 0.133 + 0.167 = 0.900, not significant.
  TransactionDatabase db(2);
  // 1 basket with both, 2 with a only, 4 with b only, 2 with neither.
  ASSERT_TRUE(db.AddBasket({0, 1}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.AddBasket({0}).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(db.AddBasket({1}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.AddBasket({}).ok());

  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult result = ComputeChiSquared(*table);
  EXPECT_NEAR(result.statistic, 0.9, 1e-9);
  EXPECT_EQ(result.dof, 1);
  EXPECT_FALSE(result.SignificantAt(0.95));
}

TEST(ChiSquaredTest, IndependentColumnsGiveZero) {
  // Build a database whose empirical joint is exactly the product of
  // marginals: 4 baskets covering each cell once with p(a)=p(b)=0.5.
  auto db = testing::MakeDatabase(2, {{0, 1}, {0}, {1}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult result = ComputeChiSquared(*table);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
}

TEST(ChiSquaredTest, PerfectCorrelationGivesN) {
  // Items always co-occur or co-miss: phi = 1, chi2 = n.
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 30; ++i) baskets.push_back({0, 1});
  for (int i = 0; i < 70; ++i) baskets.push_back({});
  auto db = testing::MakeDatabase(2, baskets);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult result = ComputeChiSquared(*table);
  EXPECT_NEAR(result.statistic, 100.0, 1e-9);
  EXPECT_TRUE(result.SignificantAt(0.95));
}

TEST(ChiSquaredTest, DofPolicies) {
  auto db = testing::RandomIndependentDatabase(4, 100, 3);
  BitmapCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1, 2});
  ASSERT_TRUE(table.ok());
  ChiSquaredOptions paper;
  paper.dof_policy = DofPolicy::kPaperSingle;
  EXPECT_EQ(ComputeChiSquared(*table, paper).dof, 1);
  ChiSquaredOptions conventional;
  conventional.dof_policy = DofPolicy::kIndependenceModel;
  EXPECT_EQ(ComputeChiSquared(*table, conventional).dof, 8 - 1 - 3);
}

TEST(ChiSquaredTest, ValidityDiagnostics) {
  // Tiny n makes expected cells small: rule of thumb must flag it.
  auto db = testing::MakeDatabase(2, {{0, 1}, {0}, {1}, {}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult result = ComputeChiSquared(*table);
  EXPECT_FALSE(result.validity.RuleOfThumbSatisfied());
  EXPECT_TRUE(result.validity.exact);
}

TEST(ChiSquaredTest, MaskingDropsLowExpectationCells) {
  auto db = testing::RandomCorrelatedDatabase(3, 200, 0.9, 17);
  BitmapCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1, 2});
  ASSERT_TRUE(table.ok());
  ChiSquaredOptions masked;
  masked.min_expected_cell = 10.0;
  ChiSquaredResult with_mask = ComputeChiSquared(*table, masked);
  ChiSquaredResult without = ComputeChiSquared(*table);
  EXPECT_GE(with_mask.validity.masked_cells, 0u);
  // Masking only removes non-negative contributions.
  EXPECT_LE(with_mask.statistic, without.statistic + 1e-9);
}

// Property: the sparse massaged formula equals the dense sum (Section 4).
class SparseDenseEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseDenseEquivalence, SparseEqualsDense) {
  auto db = testing::RandomIndependentDatabase(8, 250, GetParam());
  BitmapCountProvider provider(db);
  datagen::Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ItemId> items;
    size_t size = 2 + rng.NextBelow(4);
    while (items.size() < size) {
      ItemId candidate = static_cast<ItemId>(rng.NextBelow(8));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    Itemset s(items);
    auto dense = ContingencyTable::Build(provider, s);
    auto sparse = SparseContingencyTable::Build(db, s);
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE(sparse.ok());
    double d = ComputeChiSquared(*dense).statistic;
    double sp = ComputeChiSquared(*sparse).statistic;
    EXPECT_NEAR(sp, d, 1e-7 * (1.0 + d)) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDenseEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Property: Theorem 1 (Appendix A) — the chi-squared statistic is upward
// closed: adding an item never decreases it.
class UpwardClosure : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpwardClosure, StatisticMonotoneUnderSupersets) {
  auto db = testing::RandomCorrelatedDatabase(7, 300, 0.7, GetParam());
  BitmapCountProvider provider(db);
  datagen::Rng rng(GetParam() * 31 + 5);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<ItemId> items;
    size_t size = 2 + rng.NextBelow(3);
    while (items.size() < size) {
      ItemId candidate = static_cast<ItemId>(rng.NextBelow(7));
      if (std::find(items.begin(), items.end(), candidate) == items.end()) {
        items.push_back(candidate);
      }
    }
    Itemset s(items);
    ItemId extra = static_cast<ItemId>(rng.NextBelow(7));
    if (s.Contains(extra)) continue;
    // Skip degenerate marginals (expected value 0 cells break the algebra).
    if (db.ItemCount(extra) == 0 || db.ItemCount(extra) == db.num_baskets()) {
      continue;
    }
    auto small = ContingencyTable::Build(provider, s);
    auto big = ContingencyTable::Build(provider, s.WithItem(extra));
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(big.ok());
    double chi_small = ComputeChiSquared(*small).statistic;
    double chi_big = ComputeChiSquared(*big).statistic;
    EXPECT_GE(chi_big, chi_small - 1e-7)
        << s.ToString() << " + item " << extra;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpwardClosure,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

TEST(YatesCorrectionTest, ReducesStatisticAndMatchesHandValue) {
  // Example 3's table: O = {1,2,4,2}, E = {5/3, 4/3, 10/3, 8/3};
  // uncorrected chi2 = 0.9. Corrected: each |O-E| shrinks by 0.5.
  TransactionDatabase db(2);
  ASSERT_TRUE(db.AddBasket({0, 1}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.AddBasket({0}).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(db.AddBasket({1}).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(db.AddBasket({}).ok());
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredOptions yates;
  yates.yates_correction = true;
  ChiSquaredResult corrected = ComputeChiSquared(*table, yates);
  ChiSquaredResult plain = ComputeChiSquared(*table);
  EXPECT_LT(corrected.statistic, plain.statistic);
  // Hand value: diffs are all 2/3 -> corrected diff 1/6 each; sum of
  // (1/6)^2/E = (1/36)(3/5 + 3/4 + 3/10 + 3/8).
  double expected = (1.0 / 36.0) * (3.0 / 5 + 3.0 / 4 + 3.0 / 10 + 3.0 / 8);
  EXPECT_NEAR(corrected.statistic, expected, 1e-12);
}

TEST(YatesCorrectionTest, DiffSmallerThanHalfClampsToZero) {
  // Perfectly independent table has O == E everywhere; correction keeps 0.
  auto db = testing::MakeDatabase(2, {{0, 1}, {0}, {1}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredOptions yates;
  yates.yates_correction = true;
  EXPECT_DOUBLE_EQ(ComputeChiSquared(*table, yates).statistic, 0.0);
}

TEST(YatesCorrectionTest, NegligibleAtLargeCounts) {
  auto db = testing::RandomCorrelatedDatabase(2, 5000, 0.5, 3);
  BitmapCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  ChiSquaredOptions yates;
  yates.yates_correction = true;
  double corrected = ComputeChiSquared(*table, yates).statistic;
  double plain = ComputeChiSquared(*table).statistic;
  EXPECT_LT(plain - corrected, 0.05 * plain);
}

}  // namespace
}  // namespace corrmine
