// Cross-module integration tests: generators feeding the full mining
// pipeline, asserting the qualitative shapes the paper's evaluation reports.

#include <set>

#include <gtest/gtest.h>

#include "core/border.h"
#include "core/chi_squared_miner.h"
#include "datagen/census_generator.h"
#include "datagen/quest_generator.h"
#include "datagen/text_generator.h"
#include "mining/association_rules.h"

namespace corrmine {
namespace {

TEST(CensusIntegration, MilitaryAgePairIsSignificant) {
  datagen::CensusOptions options;
  options.num_persons = 30370;
  auto db = datagen::GenerateCensusData(options);
  ASSERT_TRUE(db.ok());
  BitmapCountProvider provider(*db);
  // i2 (military) x i7 (age): the paper's Example 4 headline pair.
  auto table = ContingencyTable::Build(provider, Itemset{2, 7});
  ASSERT_TRUE(table.ok());
  ChiSquaredResult chi2 = ComputeChiSquared(*table);
  EXPECT_TRUE(chi2.SignificantAt(0.95));
  EXPECT_GT(chi2.statistic, 1000.0);  // Paper: 2006.34.
  EXPECT_LT(chi2.statistic, 3500.0);
}

TEST(CensusIntegration, MinerRunsOverFullCensus) {
  datagen::CensusOptions options;
  options.num_persons = 30370;
  auto db = datagen::GenerateCensusData(options);
  ASSERT_TRUE(db.ok());
  BitmapCountProvider provider(*db);
  MinerOptions miner;
  miner.support.min_count =
      static_cast<uint64_t>(0.01 * static_cast<double>(db->num_baskets()));
  miner.support.cell_fraction = 0.25 + 1e-9;
  auto result = MineCorrelations(provider, db->num_items(), miner);
  ASSERT_TRUE(result.ok());
  // Paper's Table 2: most (but not all) of the 45 pairs are correlated.
  ASSERT_FALSE(result->levels.empty());
  const LevelStats& level2 = result->levels[0];
  EXPECT_EQ(level2.possible_itemsets, 45u);
  EXPECT_GT(level2.significant, 25u);
  EXPECT_LT(level2.significant, 45u);

  // {i1, i4} and {i1, i5} are the paper's surprising *uncorrelated* pairs.
  std::set<Itemset> sig;
  for (const auto& rule : result->significant) sig.insert(rule.itemset);
  EXPECT_FALSE(sig.count(Itemset{1, 4}));
  EXPECT_FALSE(sig.count(Itemset{1, 5}));
  // The obvious correlations are found.
  EXPECT_TRUE(sig.count(Itemset{2, 7}));  // Military x age.
  EXPECT_TRUE(sig.count(Itemset{4, 5}));  // Citizenship x birthplace.
}

TEST(TextIntegration, MiningFindsTopicalPairsAndWeakTriples) {
  auto corpus = datagen::GenerateTextCorpus();
  ASSERT_TRUE(corpus.ok());
  const TransactionDatabase& db = corpus->database;
  BitmapCountProvider provider(db);
  MinerOptions miner;
  miner.support.min_count = 5;
  miner.support.cell_fraction = 0.25 + 1e-9;
  miner.max_level = 3;
  auto result = MineCorrelations(provider, db.num_items(), miner);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->levels.size(), 1u);
  EXPECT_GT(result->levels[0].significant, 0u);

  // The flagship pair must be on the border.
  auto mandela = db.dictionary().Get("mandela");
  auto nelson = db.dictionary().Get("nelson");
  ASSERT_TRUE(mandela.ok());
  ASSERT_TRUE(nelson.ok());
  std::set<Itemset> sig;
  double mandela_nelson_chi2 = 0.0;
  double max_pair_chi2 = 0.0;
  double max_triple_chi2 = 0.0;
  for (const auto& rule : result->significant) {
    sig.insert(rule.itemset);
    if (rule.itemset.size() == 2) {
      max_pair_chi2 = std::max(max_pair_chi2, rule.chi2.statistic);
    } else if (rule.itemset.size() == 3) {
      max_triple_chi2 = std::max(max_triple_chi2, rule.chi2.statistic);
    }
    if (rule.itemset == Itemset{*mandela, *nelson}) {
      mandela_nelson_chi2 = rule.chi2.statistic;
    }
  }
  EXPECT_TRUE(sig.count(Itemset{*mandela, *nelson}));
  EXPECT_GT(mandela_nelson_chi2, 60.0);  // Paper: 91.000 (= n).
  // Paper: "While some pairs of words have large chi2 values, no triple has
  // a chi2 value larger than 10."
  if (max_triple_chi2 > 0.0) {
    EXPECT_LT(max_triple_chi2, max_pair_chi2);
  }
}

TEST(QuestIntegration, PruningShapeMatchesTable5) {
  // Full-scale Quest run with the Table 5 calibration (DESIGN.md): the
  // paper's 99 997 x 870 dataset with |L| and s chosen so that the level-2
  // candidate count lands at the paper's ~8019.
  datagen::QuestOptions quest;
  quest.num_patterns = 140;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  BitmapCountProvider provider(*db);
  MinerOptions miner;
  miner.support.min_count =
      static_cast<uint64_t>(0.05 * static_cast<double>(db->num_baskets()));
  miner.support.cell_fraction = 0.25 + 1e-9;
  miner.level_one = LevelOnePruning::kFigure1Strict;
  auto result = MineCorrelations(provider, db->num_items(), miner);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->levels.size(), 2u);
  const LevelStats& level2 = result->levels[0];
  const LevelStats& level3 = result->levels[1];
  EXPECT_EQ(level2.possible_itemsets, 378015u);
  // Level-1 pruning cuts the pair candidates drastically (Table 5: 8019 of
  // 378015) ...
  EXPECT_LT(level2.candidates, 20000u);
  EXPECT_GT(level2.candidates, 2000u);
  // ... correlation + support pruning shrink each subsequent level, and
  // the search dies out within a few levels.
  EXPECT_LT(level3.candidates, level2.candidates);
  EXPECT_LT(level3.significant, level2.significant);
  EXPECT_GT(level2.significant, 0u);
  EXPECT_LE(result->levels.size(), 5u);
  // Discards stay a small fraction of candidates at level 2 (Table 5:
  // 323 of 8019).
  EXPECT_LT(level2.discards, level2.candidates / 10);
}

TEST(QuestIntegration, CorrelationBorderCoversSupersets) {
  datagen::QuestOptions quest;
  quest.num_transactions = 5000;
  quest.num_items = 100;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 100;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  BitmapCountProvider provider(*db);
  MinerOptions miner;
  miner.support.min_count = 50;
  miner.support.cell_fraction = 0.25 + 1e-9;
  auto result = MineCorrelations(provider, db->num_items(), miner);
  ASSERT_TRUE(result.ok());
  std::vector<Itemset> sets;
  for (const auto& rule : result->significant) sets.push_back(rule.itemset);
  CorrelationBorder border(std::move(sets));
  EXPECT_EQ(border.size(), result->significant.size());
  for (const auto& rule : result->significant) {
    EXPECT_TRUE(border.IsAboveBorder(rule.itemset));
  }
}

}  // namespace
}  // namespace corrmine
