#ifndef CORRMINE_TESTS_TEST_UTIL_H_
#define CORRMINE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "datagen/rng.h"
#include "itemset/transaction_database.h"

namespace corrmine::testing {

/// Builds a database from explicit baskets; aborts on invalid input so test
/// setup failures are loud.
inline TransactionDatabase MakeDatabase(
    ItemId num_items, const std::vector<std::vector<ItemId>>& baskets) {
  TransactionDatabase db(num_items);
  for (const auto& basket : baskets) {
    auto status = db.AddBasket(basket);
    CORRMINE_CHECK(status.ok()) << status.ToString();
  }
  return db;
}

/// Random database where each item appears independently with a per-item
/// probability drawn from [0.1, 0.9] — uncorrelated null model.
inline TransactionDatabase RandomIndependentDatabase(ItemId num_items,
                                                     size_t num_baskets,
                                                     uint64_t seed) {
  datagen::Rng rng(seed);
  std::vector<double> probs(num_items);
  for (double& p : probs) p = 0.1 + 0.8 * rng.NextDouble();
  TransactionDatabase db(num_items);
  for (size_t b = 0; b < num_baskets; ++b) {
    std::vector<ItemId> basket;
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(probs[i])) basket.push_back(i);
    }
    auto status = db.AddBasket(std::move(basket));
    CORRMINE_CHECK(status.ok()) << status.ToString();
  }
  return db;
}

/// Random database with planted structure: items 0 and 1 are strongly
/// positively correlated (item 1 copies item 0 with probability
/// `copy_prob`), everything else independent.
inline TransactionDatabase RandomCorrelatedDatabase(ItemId num_items,
                                                    size_t num_baskets,
                                                    double copy_prob,
                                                    uint64_t seed) {
  datagen::Rng rng(seed);
  TransactionDatabase db(num_items);
  for (size_t b = 0; b < num_baskets; ++b) {
    std::vector<ItemId> basket;
    bool zero = rng.NextBernoulli(0.5);
    if (zero) basket.push_back(0);
    bool one = rng.NextBernoulli(copy_prob) ? zero : rng.NextBernoulli(0.5);
    if (one) basket.push_back(1);
    for (ItemId i = 2; i < num_items; ++i) {
      if (rng.NextBernoulli(0.4)) basket.push_back(i);
    }
    auto status = db.AddBasket(std::move(basket));
    CORRMINE_CHECK(status.ok()) << status.ToString();
  }
  return db;
}

}  // namespace corrmine::testing

#endif  // CORRMINE_TESTS_TEST_UTIL_H_
