// The profiling subsystem (common/profiler.h + common/pmu.h, DESIGN.md
// §13): PmuCounts arithmetic, the one-shot availability probe and its
// degradation contract, phase attribution through ProfileScope/RecordPhase,
// the "profile" JSON section's structure, and the SIGPROF sampling
// profiler's capture + collapsed-stack export. Every test passes whether
// or not perf_event_open is available — graceful degradation IS the
// contract — and the whole file runs under TSan in verify.sh.

#include "common/profiler.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/pmu.h"
#include "common/trace.h"
#include "io/json_reader.h"

namespace corrmine {
namespace {

/// Keeps a burn-loop accumulator observable so the loop is not optimized
/// away (the loops exist to accumulate CPU time for SIGPROF / the PMU).
inline void KeepAlive(uint64_t& value) {
  asm volatile("" : "+r"(value) : : "memory");
}

TEST(PmuCountsTest, DifferenceSaturatesPerField) {
  PmuCounts a;
  a.cycles = 100;
  a.instructions = 50;
  a.llc_loads = 10;
  a.valid = true;
  PmuCounts b;
  b.cycles = 40;
  b.instructions = 80;  // Larger than a's: field was absent on one side.
  b.valid = true;
  PmuCounts d = a - b;
  EXPECT_EQ(d.cycles, 60u);
  EXPECT_EQ(d.instructions, 0u);  // Saturates, never wraps.
  EXPECT_EQ(d.llc_loads, 10u);
  EXPECT_TRUE(d.valid);
  PmuCounts invalid;
  EXPECT_FALSE((a - invalid).valid);
}

TEST(PmuCountsTest, AccumulateSums) {
  PmuCounts total;
  PmuCounts delta;
  delta.cycles = 5;
  delta.task_clock_ns = 7;
  delta.valid = true;
  total += delta;
  total += delta;
  EXPECT_EQ(total.cycles, 10u);
  EXPECT_EQ(total.task_clock_ns, 14u);
  EXPECT_TRUE(total.valid);
}

TEST(PmuProbeTest, VerdictIsCachedAndExplained) {
  const PmuProbe& first = ProbePmu();
  const PmuProbe& second = ProbePmu();
  EXPECT_EQ(&first, &second);  // One probe per process.
  if (!first.available) {
    // The degradation contract: denial always comes with a reason.
    EXPECT_FALSE(first.reason.empty());
  }
}

TEST(PmuGroupTest, TracksProbeVerdictAndReadsConsistently) {
  PmuGroup group;
  if (!ProbePmu().available || !kMetricsEnabled) {
    // Where perf_event_open is denied the group must be inert: invalid,
    // zero reads, no crashes — callers never need to check first.
    EXPECT_FALSE(group.valid());
    PmuCounts counts = group.Read();
    EXPECT_FALSE(counts.valid);
    EXPECT_EQ(counts.cycles, 0u);
    return;
  }
  ASSERT_TRUE(group.valid());
  PmuCounts before = group.Read();
  ASSERT_TRUE(before.valid);
  // Burn some cycles so the deltas are visibly positive.
  uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<uint64_t>(i) * 31;
  KeepAlive(sink);
  PmuCounts after = group.Read();
  ASSERT_TRUE(after.valid);
  EXPECT_GE(after.cycles, before.cycles);
  EXPECT_GT(after.cycles - before.cycles, 0u);
  EXPECT_GT(after.instructions - before.instructions, 0u);
}

class ProfilerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Profiler::Global().Stop();
    Tracer::Global().Stop();
  }
};

TEST_F(ProfilerTest, RecordPhaseAggregatesScopesAndCounts) {
  Profiler& profiler = Profiler::Global();
  profiler.Start(ProfilerOptions{});  // Resets phases; no collectors.
  PmuCounts delta;
  delta.cycles = 1000;
  delta.instructions = 2500;
  delta.llc_loads = 100;
  delta.llc_misses = 25;
  delta.valid = true;
  profiler.RecordPhase("test.phase", delta);
  profiler.RecordPhase("test.phase", delta);
  profiler.Stop();
  auto phases = profiler.PhaseSnapshot();
  if (!kMetricsEnabled) {
    EXPECT_TRUE(phases.empty());
    return;
  }
  ASSERT_EQ(phases.count("test.phase"), 1u);
  EXPECT_EQ(phases["test.phase"].scopes, 2u);
  EXPECT_EQ(phases["test.phase"].counts.cycles, 2000u);
  EXPECT_EQ(phases["test.phase"].counts.instructions, 5000u);

  // The JSON rendering derives the rates from the aggregates.
  auto doc = io::ParseJson(profiler.RenderProfileJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const io::JsonValue* phase = doc->Find("phases");
  ASSERT_NE(phase, nullptr);
  const io::JsonValue* test_phase = phase->Find("test.phase");
  ASSERT_NE(test_phase, nullptr);
  EXPECT_EQ(test_phase->Find("ipc")->number_value, 2.5);
  EXPECT_EQ(test_phase->Find("llc_miss_rate")->number_value, 0.25);
  EXPECT_EQ(test_phase->Find("scopes")->number_value, 2.0);
}

TEST_F(ProfilerTest, ProfileScopeIsInertWithoutAnActivePmu) {
  Profiler& profiler = Profiler::Global();
  profiler.Start(ProfilerOptions{});  // No PMU requested.
  {
    ProfileScope scope("inert.phase");
  }
  profiler.Stop();
  EXPECT_EQ(profiler.PhaseSnapshot().count("inert.phase"), 0u);
}

TEST_F(ProfilerTest, ProfileScopeAttributesWhenPmuAvailable) {
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.pmu = true;
  profiler.Start(options);
  {
    ProfileScope scope("attributed.phase");
    uint64_t sink = 0;
    for (int i = 0; i < 1000000; ++i) sink += static_cast<uint64_t>(i);
    KeepAlive(sink);
  }
  profiler.Stop();
  auto phases = profiler.PhaseSnapshot();
  if (!kMetricsEnabled || !ProbePmu().available) {
    // Degraded: the scope must cost nothing and record nothing.
    EXPECT_TRUE(phases.empty());
    return;
  }
  ASSERT_EQ(phases.count("attributed.phase"), 1u);
  EXPECT_EQ(phases["attributed.phase"].scopes, 1u);
  EXPECT_GT(phases["attributed.phase"].counts.cycles, 0u);
}

TEST_F(ProfilerTest, ProfileJsonIsStructurallyCompleteInEveryMode) {
  // Never-started profiler: the section must still be complete — the
  // stats-JSON writer emits it unconditionally.
  auto doc = io::ParseJson(Profiler::Global().RenderProfileJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const io::JsonValue* pmu = doc->Find("pmu");
  ASSERT_NE(pmu, nullptr);
  const io::JsonValue* available = pmu->Find("available");
  ASSERT_NE(available, nullptr);
  EXPECT_EQ(available->type, io::JsonValue::Type::kBool);
  const io::JsonValue* reason = pmu->Find("reason");
  ASSERT_NE(reason, nullptr);
  if (!available->bool_value) {
    EXPECT_FALSE(reason->string_value.empty());
  }
  ASSERT_NE(doc->Find("phases"), nullptr);
  const io::JsonValue* sampling = doc->Find("sampling");
  ASSERT_NE(sampling, nullptr);
  for (const char* key : {"samples", "dropped", "unresolved"}) {
    const io::JsonValue* v = sampling->Find(key);
    ASSERT_NE(v, nullptr) << key;
    EXPECT_TRUE(v->is_number()) << key;
    EXPECT_GE(v->number_value, 0) << key;
  }
}

/// Burns CPU until the sampling profiler has captured at least
/// `min_samples` or ~4s of wall clock pass. ITIMER_PROF ticks on CPU
/// time with kernel-tick granularity, so a sub-millisecond loop would
/// never be sampled — the busy loop below guarantees enough CPU time.
void BurnUntilSampled(uint64_t min_samples) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(4);
  uint64_t sink = 0;
  while (Profiler::Global().samples_recorded() < min_samples &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 200000; ++i) sink += static_cast<uint64_t>(i) * 7;
    KeepAlive(sink);
  }
}

TEST_F(ProfilerTest, SamplingCapturesStacksAndExportsCollapsedFormat) {
  if (!kMetricsEnabled) {
    Profiler::Global().Start(ProfilerOptions{false, true, 997});
    EXPECT_FALSE(Profiler::Global().sampling_active());
    EXPECT_EQ(Profiler::Global().samples_recorded(), 0u);
    return;
  }
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.sampling = true;
  options.sample_interval_usec = 500;
  profiler.Start(options);
  ASSERT_TRUE(profiler.sampling_active());
  BurnUntilSampled(3);
  profiler.Stop();
  EXPECT_FALSE(profiler.sampling_active());
  const uint64_t samples = profiler.samples_recorded();
  ASSERT_GT(samples, 0u) << "no SIGPROF samples after seconds of CPU burn";

  const std::string collapsed = profiler.RenderCollapsedStacks();
  ASSERT_FALSE(collapsed.empty());
  // Every line is "frames... count" with a positive trailing integer and
  // no empty frames — the flamegraph.pl input contract.
  std::istringstream lines(collapsed);
  std::string line;
  uint64_t total = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string count = line.substr(space + 1);
    for (char c : count) ASSERT_TRUE(c >= '0' && c <= '9') << line;
    total += std::strtoull(count.c_str(), nullptr, 10);
    const std::string frames = line.substr(0, space);
    EXPECT_NE(frames.front(), ';') << line;
    EXPECT_NE(frames.back(), ';') << line;
    EXPECT_EQ(frames.find(";;"), std::string::npos) << line;
    EXPECT_EQ(frames.find(' '), std::string::npos) << line;
  }
  EXPECT_EQ(total, samples);  // Every captured sample folds into a stack.

  const std::string path =
      ::testing::TempDir() + "/corrmine_profiler_test.folded";
  Status status = profiler.WriteCollapsedStacks(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST_F(ProfilerTest, SamplesFoldIntoAnActiveTraceAsInstantEvents) {
  if (!kMetricsEnabled) return;
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  // Register this thread's ring BEFORE sampling starts: the handler only
  // uses the async-signal-safe cached lookup and never registers.
  { TraceScope warmup("profiler.test.warmup"); }
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.sampling = true;
  options.sample_interval_usec = 500;
  profiler.Start(options);
  BurnUntilSampled(3);
  profiler.Stop();
  tracer.Stop();
  if (profiler.samples_recorded() == 0) {
    GTEST_SKIP() << "no samples landed (loaded machine) — folding untested";
  }
  std::vector<Tracer::ThreadTrace> threads = tracer.Collect();
  uint64_t folded = 0;
  for (const auto& thread : threads) {
    for (const TraceEvent& event : thread.events) {
      if (std::string(event.name) == "profiler.sample") ++folded;
    }
  }
  EXPECT_GT(folded, 0u)
      << "samples were captured but none folded into the trace";
  // The export must still be a valid Chrome document with the instants in.
  EXPECT_NE(tracer.ToChromeJson().find("profiler.sample"),
            std::string::npos);
}

TEST_F(ProfilerTest, StartResetsSampleAndPhaseStateBetweenSessions) {
  if (!kMetricsEnabled) return;
  Profiler& profiler = Profiler::Global();
  ProfilerOptions options;
  options.sampling = true;
  options.sample_interval_usec = 500;
  profiler.Start(options);
  BurnUntilSampled(1);
  profiler.Stop();

  profiler.Start(ProfilerOptions{});  // New session: counters reset.
  EXPECT_EQ(profiler.samples_recorded(), 0u);
  EXPECT_EQ(profiler.samples_dropped(), 0u);
  EXPECT_TRUE(profiler.PhaseSnapshot().empty());
  profiler.Stop();
}

}  // namespace
}  // namespace corrmine
