// Scheduler determinism matrix (DESIGN.md §10): the work-stealing pool, the
// morsel-parallel count providers, and the pipelined level loop must never
// leak schedule noise into results. One baseline run pins the expected
// bytes; every (threads × shards) combination — repeated, because races are
// flaky by nature — must reproduce the mined rules bit for bit (double bit
// patterns included, not an epsilon compare) and render the exact same
// deterministic stats-JSON line.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/chi_squared_miner.h"
#include "core/session.h"
#include "datagen/quest_generator.h"
#include "io/stats_json.h"

namespace corrmine {
namespace {

TransactionDatabase MatrixFixture() {
  datagen::QuestOptions quest;
  quest.num_transactions = 3000;
  quest.num_items = 80;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 20;
  quest.seed = 1997;
  auto db = datagen::GenerateQuestData(quest);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

MinerOptions MatrixMinerOptions() {
  MinerOptions options;
  options.support.min_count = 25;
  options.support.cell_fraction = 0.25;
  // Exercise §3.3 cell masking so masked-cell accounting is part of the
  // cross-schedule contract.
  options.chi2.min_expected_cell = 1.0;
  return options;
}

/// Bit pattern of a double, so the fingerprint is an exact-bytes compare —
/// "close enough" floats from a different summation order must FAIL.
uint64_t Bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Every schedule-observable byte of a mining result: rule order, itemsets,
/// chi-squared statistics and p-values (as bit patterns), validity
/// accounting, the major-dependence cell, and the per-level stats table.
std::string ExactFingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString();
    out += ':' + std::to_string(Bits(rule.chi2.statistic));
    out += ':' + std::to_string(Bits(rule.chi2.p_value));
    out += ':' + std::to_string(rule.chi2.dof);
    out += ':' + std::to_string(rule.chi2.validity.masked_cells);
    out += ':' + std::to_string(rule.major_dependence.mask);
    out += ':' + std::to_string(rule.major_dependence.observed);
    out += ':' + std::to_string(Bits(rule.major_dependence.interest));
    out += ';';
  }
  out += '|';
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.level) + '/' +
           std::to_string(level.possible_itemsets) + '/' +
           std::to_string(level.candidates) + '/' +
           std::to_string(level.discards) + '/' +
           std::to_string(level.chi2_tests) + '/' +
           std::to_string(level.masked_cells) + '/' +
           std::to_string(level.significant) + '/' +
           std::to_string(level.not_significant) + ';';
  }
  return out;
}

TEST(SchedulerDeterminismTest, MatrixByteIdentical) {
  TransactionDatabase db = MatrixFixture();
  MinerOptions options = MatrixMinerOptions();

  // Baseline: sequential, monolithic — no pool, no shards, no pipeline
  // overlap. Everything else must reproduce these bytes.
  std::string fingerprint;
  std::string stats_line;
  {
    SessionOptions session_options;
    session_options.num_threads = 1;
    session_options.num_shards = 1;
    auto session = MiningSession::FromDatabase(db, session_options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto result = session->Mine(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(result->significant.empty()) << "degenerate fixture";
    ASSERT_GE(result->levels.size(), 2u) << "fixture must reach level 3";
    fingerprint = ExactFingerprint(*result);
    stats_line = RenderDeterministicStats(*result, nullptr);
  }

  constexpr int kRepeats = 2;  // same config twice: catches flaky races
  for (int threads : {1, 2, 8}) {
    for (int shards : {1, 4}) {
      for (int repeat = 0; repeat < kRepeats; ++repeat) {
        SessionOptions session_options;
        session_options.num_threads = threads;
        session_options.num_shards = shards;
        auto session = MiningSession::FromDatabase(db, session_options);
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        auto result = session->Mine(options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(ExactFingerprint(*result), fingerprint)
            << "threads " << threads << " shards " << shards << " repeat "
            << repeat;
        EXPECT_EQ(RenderDeterministicStats(*result, nullptr), stats_line)
            << "threads " << threads << " shards " << shards << " repeat "
            << repeat;
      }
    }
  }
}

// The 0-means-auto paths (threads and shards resolved from the usable core
// count) must land on the same bytes as every explicit configuration.
TEST(SchedulerDeterminismTest, AutoDetectedConfigMatchesBaseline) {
  TransactionDatabase db = MatrixFixture();
  MinerOptions options = MatrixMinerOptions();

  SessionOptions baseline_options;
  baseline_options.num_threads = 1;
  baseline_options.num_shards = 1;
  auto baseline = MiningSession::FromDatabase(db, baseline_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto expected = baseline->Mine(options);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  SessionOptions auto_options;
  auto_options.num_threads = 0;
  auto_options.num_shards = 0;
  auto session = MiningSession::FromDatabase(db, auto_options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_GE(session->num_threads(), 1);
  EXPECT_GE(session->num_shards(), 1u);
  auto result = session->Mine(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(ExactFingerprint(*result), ExactFingerprint(*expected));
  EXPECT_EQ(RenderDeterministicStats(*result, nullptr),
            RenderDeterministicStats(*expected, nullptr));
}

// The prefix cache rides on top of the same pool; its deterministic cache
// counters (and the mined bytes) must also be schedule-independent.
TEST(SchedulerDeterminismTest, PrefixCacheStatsStableAcrossThreads) {
  TransactionDatabase db = MatrixFixture();
  MinerOptions options = MatrixMinerOptions();

  std::string fingerprint;
  std::string stats_line;
  for (int threads : {1, 8}) {
    SessionOptions session_options;
    session_options.num_threads = threads;
    session_options.num_shards = 1;
    session_options.prefix_cache = true;
    auto session = MiningSession::FromDatabase(db, session_options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto result = session->Mine(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(session->cache(), nullptr);
    CachedCountProvider::CacheStats cache = session->cache()->stats();
    std::string line = RenderDeterministicStats(*result, &cache);
    if (fingerprint.empty()) {
      fingerprint = ExactFingerprint(*result);
      stats_line = line;
    } else {
      EXPECT_EQ(ExactFingerprint(*result), fingerprint)
          << "threads " << threads;
      EXPECT_EQ(line, stats_line) << "threads " << threads;
    }
  }
}

}  // namespace
}  // namespace corrmine
