#include <cmath>

#include <gtest/gtest.h>

#include "linalg/sym_matrix.h"

namespace corrmine::linalg {
namespace {

TEST(SymMatrixTest, IdentityAndSet) {
  SymMatrix m = SymMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  m.Set(0, 2, 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.5);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.5);
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  SymMatrix m(3);
  m.Set(0, 0, 3.0);
  m.Set(1, 1, 1.0);
  m.Set(2, 2, 2.0);
  EigenDecomposition eig = JacobiEigen(m);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2,
  // (1,-1)/sqrt2.
  SymMatrix m(2);
  m.Set(0, 0, 2.0);
  m.Set(1, 1, 2.0);
  m.Set(0, 1, 1.0);
  EigenDecomposition eig = JacobiEigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(eig.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-10);
  EXPECT_NEAR(std::fabs(eig.vectors[0][1]), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  // A = V diag(lambda) V^T must reproduce the input.
  SymMatrix m(4);
  double values[4][4] = {{4.0, 1.2, -0.3, 0.5},
                         {1.2, 3.0, 0.7, -0.2},
                         {-0.3, 0.7, 2.0, 0.1},
                         {0.5, -0.2, 0.1, 1.0}};
  for (int i = 0; i < 4; ++i) {
    for (int j = i; j < 4; ++j) m.Set(i, j, values[i][j]);
  }
  EigenDecomposition eig = JacobiEigen(m);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        sum += eig.values[k] * eig.vectors[k][i] * eig.vectors[k][j];
      }
      EXPECT_NEAR(sum, values[i][j], 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  SymMatrix m(3);
  m.Set(0, 0, 1.0);
  m.Set(1, 1, 2.0);
  m.Set(2, 2, 3.0);
  m.Set(0, 1, 0.4);
  m.Set(1, 2, -0.6);
  m.Set(0, 2, 0.2);
  EigenDecomposition eig = JacobiEigen(m);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (int i = 0; i < 3; ++i) dot += eig.vectors[a][i] * eig.vectors[b][i];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(NearestCorrelationTest, PsdInputPassesThrough) {
  SymMatrix m = SymMatrix::Identity(3);
  m.Set(0, 1, 0.5);
  m.Set(1, 2, 0.3);
  SymMatrix fixed = NearestCorrelationMatrix(m);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(fixed.at(i, j), m.at(i, j), 1e-6);
    }
  }
}

TEST(NearestCorrelationTest, RepairsIndefiniteMatrix) {
  // Pairwise correlations (0.9, 0.9, -0.9) are jointly infeasible.
  SymMatrix m = SymMatrix::Identity(3);
  m.Set(0, 1, 0.9);
  m.Set(0, 2, 0.9);
  m.Set(1, 2, -0.9);
  SymMatrix fixed = NearestCorrelationMatrix(m);
  // Result must have unit diagonal and all eigenvalues >= 0.
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(fixed.at(i, i), 1.0, 1e-12);
  EigenDecomposition eig = JacobiEigen(fixed);
  for (double lambda : eig.values) EXPECT_GE(lambda, -1e-10);
  // Cholesky must now succeed.
  EXPECT_TRUE(CholeskyFactor(fixed).ok());
}

TEST(CholeskyTest, KnownFactorization) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  SymMatrix m(2);
  m.Set(0, 0, 4.0);
  m.Set(0, 1, 2.0);
  m.Set(1, 1, 3.0);
  auto l = CholeskyFactor(m);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)[0], 2.0, 1e-12);
  EXPECT_NEAR((*l)[2], 1.0, 1e-12);
  EXPECT_NEAR((*l)[3], std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, ReconstructsInput) {
  SymMatrix m = SymMatrix::Identity(3);
  m.Set(0, 1, 0.6);
  m.Set(0, 2, -0.2);
  m.Set(1, 2, 0.1);
  auto l = CholeskyFactor(m);
  ASSERT_TRUE(l.ok());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) {
        sum += (*l)[i * 3 + k] * (*l)[j * 3 + k];
      }
      EXPECT_NEAR(sum, m.at(i, j), 1e-12);
    }
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  SymMatrix m = SymMatrix::Identity(2);
  m.Set(0, 1, 1.5);  // |rho| > 1: not PSD.
  EXPECT_TRUE(CholeskyFactor(m).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace corrmine::linalg
