# End-to-end check of the --stats-json determinism contract (ISSUE/DESIGN
# §6): mine the same Quest fixture at --threads 1 and --threads 8 with the
# prefix cache on, and require the "deterministic" line of the two stats
# files to be byte-identical. The "runtime" sections (timings, pool
# activity) are expected to differ and are not compared.
execute_process(
  COMMAND ${CLI} generate quest --baskets 2000 --out ${WORKDIR}/stats_fixture.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}")
endif()

foreach(threads 1 8)
  execute_process(
    COMMAND ${CLI} mine ${WORKDIR}/stats_fixture.txt
            --support-count 100 --cell-fraction 0.26 --max-level 3
            --threads ${threads} --prefix-cache
            --stats-json ${WORKDIR}/stats_t${threads}.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "mine --threads ${threads} failed: ${rc}")
  endif()
  if(NOT EXISTS ${WORKDIR}/stats_t${threads}.json)
    message(FATAL_ERROR "--stats-json wrote no file at ${threads} threads")
  endif()
endforeach()

foreach(threads 1 8)
  file(STRINGS ${WORKDIR}/stats_t${threads}.json lines_t${threads}
       REGEX "\"deterministic\"")
  list(LENGTH lines_t${threads} n)
  if(NOT n EQUAL 1)
    message(FATAL_ERROR
            "expected exactly one deterministic line at ${threads} threads, "
            "got ${n}")
  endif()
endforeach()

if(NOT lines_t1 STREQUAL lines_t8)
  message(FATAL_ERROR
          "deterministic stats diverged across thread counts:\n"
          "  threads=1: ${lines_t1}\n"
          "  threads=8: ${lines_t8}")
endif()

# Schema sanity on the full document.
file(READ ${WORKDIR}/stats_t1.json doc)
foreach(key "\"schema\": \"corrmine-stats-v1\"" "\"runtime\":" "\"cache\":")
  string(FIND "${doc}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "stats json missing ${key}:\n${doc}")
  endif()
endforeach()

# The K-invariance contract (DESIGN.md §7), end to end: the deterministic
# line must also be byte-identical across every --shards K x --threads T
# combination. Run without --prefix-cache — the cache is a single-shard
# feature and its cost counters are not part of the sharded contract.
set(reference "")
foreach(shards 1 4)
  foreach(threads 1 8)
    set(tag s${shards}_t${threads})
    execute_process(
      COMMAND ${CLI} mine ${WORKDIR}/stats_fixture.txt
              --support-count 100 --cell-fraction 0.26 --max-level 3
              --shards ${shards} --threads ${threads}
              --stats-json ${WORKDIR}/stats_${tag}.json
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "mine --shards ${shards} --threads ${threads} "
                          "failed: ${rc}")
    endif()
    file(STRINGS ${WORKDIR}/stats_${tag}.json line
         REGEX "\"deterministic\"")
    list(LENGTH line n)
    if(NOT n EQUAL 1)
      message(FATAL_ERROR "expected one deterministic line for ${tag}, "
                          "got ${n}")
    endif()
    if(reference STREQUAL "")
      set(reference "${line}")
    elseif(NOT line STREQUAL reference)
      message(FATAL_ERROR
              "deterministic stats diverged at shards=${shards} "
              "threads=${threads}:\n  reference: ${reference}\n"
              "  got:       ${line}")
    endif()
  endforeach()
endforeach()

# The earlier runs used the prefix cache; verdicts (rules + per-level
# accounting) must not move when sharding replaces it. The cache field
# itself legitimately differs ({"queries":...} vs null), so compare the
# lines with it stripped.
string(REGEX REPLACE "\"cache\":.*" "" cached_core "${lines_t1}")
string(REGEX REPLACE "\"cache\":.*" "" sharded_core "${reference}")
if(NOT cached_core STREQUAL sharded_core)
  message(FATAL_ERROR
          "deterministic stats diverged between the cached single-shard "
          "run and the sharded matrix:\n  cached:  ${cached_core}\n"
          "  sharded: ${sharded_core}")
endif()

# Tracing must be a pure observer: re-run the matrix with --trace-out and
# require the deterministic line to stay byte-identical to the untraced
# reference, with the trace file actually written. (The trace itself is
# schema-validated by the statsdiff_cli test; here the contract is
# "recording changed nothing".)
foreach(shards 1 4)
  foreach(threads 1 8)
    set(tag traced_s${shards}_t${threads})
    execute_process(
      COMMAND ${CLI} mine ${WORKDIR}/stats_fixture.txt
              --support-count 100 --cell-fraction 0.26 --max-level 3
              --shards ${shards} --threads ${threads}
              --stats-json ${WORKDIR}/stats_${tag}.json
              --trace-out ${WORKDIR}/trace_${tag}.json
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "traced mine --shards ${shards} "
                          "--threads ${threads} failed: ${rc}")
    endif()
    if(NOT EXISTS ${WORKDIR}/trace_${tag}.json)
      message(FATAL_ERROR "--trace-out wrote no file for ${tag}")
    endif()
    file(STRINGS ${WORKDIR}/stats_${tag}.json line
         REGEX "\"deterministic\"")
    if(NOT line STREQUAL reference)
      message(FATAL_ERROR
              "tracing perturbed deterministic stats at shards=${shards} "
              "threads=${threads}:\n  untraced: ${reference}\n"
              "  traced:   ${line}")
    endif()
  endforeach()
endforeach()
