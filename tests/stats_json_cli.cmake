# End-to-end check of the --stats-json determinism contract (ISSUE/DESIGN
# §6): mine the same Quest fixture at --threads 1 and --threads 8 with the
# prefix cache on, and require the "deterministic" line of the two stats
# files to be byte-identical. The "runtime" sections (timings, pool
# activity) are expected to differ and are not compared.
execute_process(
  COMMAND ${CLI} generate quest --baskets 2000 --out ${WORKDIR}/stats_fixture.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}")
endif()

foreach(threads 1 8)
  execute_process(
    COMMAND ${CLI} mine ${WORKDIR}/stats_fixture.txt
            --support-count 100 --cell-fraction 0.26 --max-level 3
            --threads ${threads} --prefix-cache
            --stats-json ${WORKDIR}/stats_t${threads}.json
    RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "mine --threads ${threads} failed: ${rc}")
  endif()
  if(NOT EXISTS ${WORKDIR}/stats_t${threads}.json)
    message(FATAL_ERROR "--stats-json wrote no file at ${threads} threads")
  endif()
endforeach()

foreach(threads 1 8)
  file(STRINGS ${WORKDIR}/stats_t${threads}.json lines_t${threads}
       REGEX "\"deterministic\"")
  list(LENGTH lines_t${threads} n)
  if(NOT n EQUAL 1)
    message(FATAL_ERROR
            "expected exactly one deterministic line at ${threads} threads, "
            "got ${n}")
  endif()
endforeach()

if(NOT lines_t1 STREQUAL lines_t8)
  message(FATAL_ERROR
          "deterministic stats diverged across thread counts:\n"
          "  threads=1: ${lines_t1}\n"
          "  threads=8: ${lines_t8}")
endif()

# Schema sanity on the full document.
file(READ ${WORKDIR}/stats_t1.json doc)
foreach(key "\"schema\": \"corrmine-stats-v1\"" "\"runtime\":" "\"cache\":")
  string(FIND "${doc}" "${key}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "stats json missing ${key}:\n${doc}")
  endif()
endforeach()
