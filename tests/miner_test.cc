#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "cube/datacube.h"
#include "core/chi_squared_miner.h"
#include "datagen/census_generator.h"
#include "datagen/quest_generator.h"
#include "test_util.h"

namespace corrmine {
namespace {

std::set<Itemset> SignificantSets(const MiningResult& result) {
  std::set<Itemset> sets;
  for (const auto& rule : result.significant) sets.insert(rule.itemset);
  return sets;
}

TEST(BinomialCountTest, SmallValuesAndSaturation) {
  EXPECT_EQ(BinomialCount(870, 2), 378015u);
  EXPECT_EQ(BinomialCount(870, 3), 109372340u);
  EXPECT_EQ(BinomialCount(10, 0), 1u);
  EXPECT_EQ(BinomialCount(10, 10), 1u);
  EXPECT_EQ(BinomialCount(5, 6), 0u);
  EXPECT_EQ(BinomialCount(10000, 20), UINT64_MAX);  // Saturates.
}

TEST(MinerTest, FindsPlantedCorrelation) {
  auto db = testing::RandomCorrelatedDatabase(5, 500, 0.95, 42);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 5;
  options.support.cell_fraction = 0.26;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  auto sets = SignificantSets(*result);
  EXPECT_TRUE(sets.count(Itemset{0, 1}))
      << "planted pair {0,1} not found among " << sets.size() << " results";
}

TEST(MinerTest, NullDataYieldsFewPairCorrelations) {
  auto db = testing::RandomIndependentDatabase(8, 400, 7);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.confidence_level = 0.999;  // Harsh cutoff on null data.
  options.support.min_count = 4;
  options.support.cell_fraction = 0.26;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  // 28 pairs tested at the 0.1% level: expect at most ~1 false positive at
  // level 2. Deeper levels are a different story: the paper's fixed
  // one-dof cutoff is compared against a statistic summed over 2^k cells,
  // which inflates with k even on independent data — the flip side of
  // Theorem 1's monotonicity, and why the paper mines *minimal* correlated
  // sets on data with low borders rather than deep lattices of noise.
  ASSERT_FALSE(result->levels.empty());
  EXPECT_LE(result->levels[0].significant, 1u);
}

TEST(MinerTest, SignificantSetsAreMinimalInOutput) {
  auto db = testing::RandomCorrelatedDatabase(6, 400, 0.9, 13);
  BitmapCountProvider provider(db);
  auto result = MineCorrelations(provider, db.num_items());
  ASSERT_TRUE(result.ok());
  auto sets = SignificantSets(*result);
  for (const Itemset& s : sets) {
    for (const Itemset& t : sets) {
      if (s == t) continue;
      EXPECT_FALSE(s.ContainsAll(t))
          << s.ToString() << " contains reported set " << t.ToString();
    }
  }
}

TEST(MinerTest, LevelStatsAreConsistent) {
  auto db = testing::RandomCorrelatedDatabase(6, 300, 0.8, 3);
  BitmapCountProvider provider(db);
  auto result = MineCorrelations(provider, db.num_items());
  ASSERT_TRUE(result.ok());
  for (const LevelStats& stats : result->levels) {
    EXPECT_EQ(stats.candidates,
              stats.discards + stats.significant + stats.not_significant);
    EXPECT_LE(stats.candidates, stats.possible_itemsets);
  }
  ASSERT_FALSE(result->levels.empty());
  EXPECT_EQ(result->levels[0].level, 2);
  EXPECT_EQ(result->levels[0].possible_itemsets, BinomialCount(6, 2));
}

TEST(MinerTest, MaxLevelStopsSearch) {
  auto db = testing::RandomIndependentDatabase(6, 200, 19);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.max_level = 2;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->levels.size(), 1u);
}

TEST(MinerTest, RejectsBadOptions) {
  auto db = testing::RandomIndependentDatabase(3, 50, 1);
  BitmapCountProvider provider(db);
  MinerOptions bad;
  bad.confidence_level = 1.5;
  EXPECT_TRUE(MineCorrelations(provider, 3, bad).status().IsInvalidArgument());
  MinerOptions bad2;
  bad2.support.cell_fraction = 0.0;
  EXPECT_TRUE(
      MineCorrelations(provider, 3, bad2).status().IsInvalidArgument());
  TransactionDatabase empty(3);
  ScanCountProvider empty_provider(empty);
  EXPECT_TRUE(MineCorrelations(empty_provider, 3, MinerOptions())
                  .status()
                  .IsFailedPrecondition());
}

// Property: the optimized level-wise miner matches the exhaustive recursive
// definition exactly — sets, per-level statistics, everything.
struct EquivalenceCase {
  uint64_t seed;
  LevelOnePruning pruning;
};

class MinerEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(MinerEquivalence, LevelWiseMatchesBruteForce) {
  const EquivalenceCase& param = GetParam();
  auto db = testing::RandomCorrelatedDatabase(7, 200, 0.7, param.seed);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 3;
  options.support.cell_fraction = 0.26;
  options.level_one = param.pruning;

  auto fast = MineCorrelations(provider, db.num_items(), options);
  auto slow = MineCorrelationsBruteForce(provider, db.num_items(), options);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());

  EXPECT_EQ(SignificantSets(*fast), SignificantSets(*slow));
  ASSERT_EQ(fast->levels.size(), slow->levels.size());
  for (size_t i = 0; i < fast->levels.size(); ++i) {
    EXPECT_EQ(fast->levels[i].candidates, slow->levels[i].candidates)
        << "level " << fast->levels[i].level;
    EXPECT_EQ(fast->levels[i].discards, slow->levels[i].discards);
    EXPECT_EQ(fast->levels[i].significant, slow->levels[i].significant);
    EXPECT_EQ(fast->levels[i].not_significant,
              slow->levels[i].not_significant);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, MinerEquivalence,
    ::testing::Values(
        EquivalenceCase{1, LevelOnePruning::kFigure1Strict},
        EquivalenceCase{2, LevelOnePruning::kFigure1Strict},
        EquivalenceCase{3, LevelOnePruning::kFeasibilityBound},
        EquivalenceCase{4, LevelOnePruning::kFeasibilityBound},
        EquivalenceCase{5, LevelOnePruning::kNone},
        EquivalenceCase{6, LevelOnePruning::kFigure1Strict},
        EquivalenceCase{7, LevelOnePruning::kFeasibilityBound},
        EquivalenceCase{8, LevelOnePruning::kNone}));

// Property: results of the miner are all supported and correlated, and no
// immediate subset of a reported set is both supported and uncorrelated...
// (that is what put it in SIG rather than deeper).
class MinerSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinerSoundness, ReportedSetsAreSupportedAndCorrelated) {
  auto db = testing::RandomCorrelatedDatabase(6, 350, 0.85, GetParam());
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 4;
  options.support.cell_fraction = 0.26;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  for (const CorrelationRule& rule : result->significant) {
    auto table = ContingencyTable::Build(provider, rule.itemset);
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(HasCellSupport(*table, options.support));
    ChiSquaredResult chi2 = ComputeChiSquared(*table, options.chi2);
    EXPECT_TRUE(chi2.SignificantAt(options.confidence_level));
    EXPECT_NEAR(chi2.statistic, rule.chi2.statistic, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinerSoundness,
                         ::testing::Values(11, 22, 33, 44));

TEST(MinerFrontierTest, FrontierSetsAreSupportedAndUncorrelated) {
  auto db = testing::RandomCorrelatedDatabase(6, 300, 0.8, 17);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 4;
  options.support.cell_fraction = 0.26;
  options.keep_frontier = true;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  for (const Itemset& s : result->frontier) {
    auto table = ContingencyTable::Build(provider, s);
    ASSERT_TRUE(table.ok());
    EXPECT_TRUE(HasCellSupport(*table, options.support));
    EXPECT_FALSE(ComputeChiSquared(*table, options.chi2)
                     .SignificantAt(options.confidence_level))
        << s.ToString();
  }
  // Sorted output.
  for (size_t i = 1; i < result->frontier.size(); ++i) {
    EXPECT_LT(result->frontier[i - 1], result->frontier[i]);
  }
}

TEST(MinerFrontierTest, EmptyUnlessRequested) {
  auto db = testing::RandomCorrelatedDatabase(5, 200, 0.8, 19);
  BitmapCountProvider provider(db);
  auto result = MineCorrelations(provider, db.num_items());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->frontier.empty());
}

TEST(MinerFrontierTest, FrontierAtMaxLevelMatchesNotSigCount) {
  auto db = testing::RandomIndependentDatabase(6, 250, 23);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 3;
  options.support.cell_fraction = 0.26;
  options.max_level = 2;
  options.keep_frontier = true;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->levels.size(), 1u);
  EXPECT_EQ(result->frontier.size(), result->levels[0].not_significant);
}

// Field-by-field equality of two mining results, down to bitwise-equal
// doubles: the determinism contract promises byte-identical output for any
// thread count, not merely "statistically the same".
void ExpectIdenticalResults(const MiningResult& a, const MiningResult& b) {
  ASSERT_EQ(a.significant.size(), b.significant.size());
  for (size_t i = 0; i < a.significant.size(); ++i) {
    const CorrelationRule& ra = a.significant[i];
    const CorrelationRule& rb = b.significant[i];
    EXPECT_EQ(ra.itemset, rb.itemset) << "SIG order diverged at " << i;
    EXPECT_EQ(ra.chi2.statistic, rb.chi2.statistic);
    EXPECT_EQ(ra.chi2.dof, rb.chi2.dof);
    EXPECT_EQ(ra.chi2.p_value, rb.chi2.p_value);
    EXPECT_EQ(ra.major_dependence.mask, rb.major_dependence.mask);
    EXPECT_EQ(ra.major_dependence.observed, rb.major_dependence.observed);
    EXPECT_EQ(ra.major_dependence.expected, rb.major_dependence.expected);
  }
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].level, b.levels[i].level);
    EXPECT_EQ(a.levels[i].possible_itemsets, b.levels[i].possible_itemsets);
    EXPECT_EQ(a.levels[i].candidates, b.levels[i].candidates);
    EXPECT_EQ(a.levels[i].discards, b.levels[i].discards);
    EXPECT_EQ(a.levels[i].significant, b.levels[i].significant);
    EXPECT_EQ(a.levels[i].not_significant, b.levels[i].not_significant);
  }
  EXPECT_EQ(a.frontier, b.frontier);
}

// Parallel evaluation must be invisible in the output: threads=4 and
// threads=1 give identical MiningResults on the paper-style fixtures.
TEST(MinerDeterminismTest, QuestFixtureParallelMatchesSequential) {
  datagen::QuestOptions quest;
  quest.num_transactions = 3000;
  quest.num_items = 80;
  quest.avg_transaction_size = 8.0;
  quest.num_patterns = 60;
  auto db = datagen::GenerateQuestData(quest);
  ASSERT_TRUE(db.ok());
  BitmapCountProvider provider(*db);
  MinerOptions options;
  options.support.min_count = 30;
  options.support.cell_fraction = 0.26;
  options.keep_frontier = true;

  options.num_threads = 1;
  auto sequential = MineCorrelations(provider, db->num_items(), options);
  options.num_threads = 4;
  auto parallel = MineCorrelations(provider, db->num_items(), options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_FALSE(sequential->significant.empty());
  ExpectIdenticalResults(*sequential, *parallel);
}

TEST(MinerDeterminismTest, CensusFixtureParallelMatchesSequential) {
  datagen::CensusOptions census;
  census.num_persons = 4000;
  auto db = datagen::GenerateCensusData(census);
  ASSERT_TRUE(db.ok());
  BitmapCountProvider provider(*db);
  MinerOptions options;
  options.support.min_count = 40;
  options.support.cell_fraction = 0.26;
  options.keep_frontier = true;

  options.num_threads = 1;
  auto sequential = MineCorrelations(provider, db->num_items(), options);
  options.num_threads = 4;
  auto parallel = MineCorrelations(provider, db->num_items(), options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_FALSE(sequential->significant.empty());
  ExpectIdenticalResults(*sequential, *parallel);
}

// The prefix cache changes cost, never answers — even under the parallel
// engine, where cache fills race across workers.
TEST(MinerDeterminismTest, CachedProviderMatchesPlainBitmapInParallel) {
  auto db = testing::RandomCorrelatedDatabase(10, 600, 0.8, 59);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());
  MinerOptions options;
  options.support.min_count = 5;
  options.support.cell_fraction = 0.26;
  options.keep_frontier = true;
  options.num_threads = 1;
  auto plain = MineCorrelations(bitmap, db.num_items(), options);
  options.num_threads = 4;
  auto via_cache = MineCorrelations(cached, db.num_items(), options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(via_cache.ok());
  ExpectIdenticalResults(*plain, *via_cache);
}

TEST(MinerDeterminismTest, ZeroThreadsMeansHardwareConcurrency) {
  auto db = testing::RandomCorrelatedDatabase(6, 200, 0.8, 61);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 3;
  options.support.cell_fraction = 0.26;
  options.num_threads = 1;
  auto sequential = MineCorrelations(provider, db.num_items(), options);
  options.num_threads = 0;
  auto hardware = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(hardware.ok());
  ExpectIdenticalResults(*sequential, *hardware);

  MinerOptions bad;
  bad.num_threads = -2;
  EXPECT_TRUE(
      MineCorrelations(provider, db.num_items(), bad).status()
          .IsInvalidArgument());
}

TEST(MinerProviderTest, CubeAndBitmapProvidersAgree) {
  auto db = testing::RandomCorrelatedDatabase(6, 250, 0.8, 29);
  BitmapCountProvider bitmap(db);
  auto cube = DataCube::Build(db, 3);
  ASSERT_TRUE(cube.ok());
  CubeCountProvider cube_provider(*cube, &db);
  MinerOptions options;
  options.support.min_count = 3;
  options.support.cell_fraction = 0.26;
  options.max_level = 3;
  auto via_bitmap = MineCorrelations(bitmap, db.num_items(), options);
  auto via_cube = MineCorrelations(cube_provider, db.num_items(), options);
  ASSERT_TRUE(via_bitmap.ok());
  ASSERT_TRUE(via_cube.ok());
  EXPECT_EQ(SignificantSets(*via_bitmap), SignificantSets(*via_cube));
}

}  // namespace
}  // namespace corrmine
