// The execution-tracing substrate (common/trace.h): ring-buffer semantics
// including overwrite-oldest overflow, the runtime start/stop gate, and the
// Chrome Trace Event Format exporter's structural guarantees — balanced
// begin/end per thread, per-thread monotonic timestamps, required fields —
// checked by parsing the emitted JSON with the repository's own reader.
// Everything degrades to valid-but-empty under CORRMINE_METRICS=OFF, and
// this file asserts that too (it compiles and passes in both modes).

#include "common/trace.h"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "io/json_reader.h"

namespace corrmine {
namespace {

TraceEvent MakeEvent(const char* name, uint64_t ts, TraceEventPhase phase) {
  TraceEvent event;
  event.name = name;
  event.ts_ns = ts;
  event.phase = phase;
  return event;
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwoWithFloor) {
  EXPECT_EQ(TraceRing(0).capacity(), 8u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRingTest, KeepsEventsInAppendOrder) {
  TraceRing ring(16);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Append(MakeEvent("e", i, TraceEventPhase::kInstant));
  }
  TraceRing::Contents contents = ring.Snapshot();
  EXPECT_EQ(contents.dropped, 0u);
  ASSERT_EQ(contents.events.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(contents.events[i].ts_ns, i);
  }
  EXPECT_EQ(ring.total_appended(), 10u);
}

TEST(TraceRingTest, OverflowDropsOldestAndCountsDrops) {
  TraceRing ring(8);
  const uint64_t total = 8 * 5 + 3;  // Wrap several times, land mid-ring.
  for (uint64_t i = 0; i < total; ++i) {
    ring.Append(MakeEvent("e", i, TraceEventPhase::kInstant));
  }
  TraceRing::Contents contents = ring.Snapshot();
  EXPECT_EQ(contents.dropped, total - 8);
  ASSERT_EQ(contents.events.size(), 8u);
  // The survivors are exactly the most recent 8, still oldest-first.
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(contents.events[i].ts_ns, total - 8 + i);
  }
  EXPECT_EQ(ring.total_appended(), total);
}

class TracerTest : public ::testing::Test {
 protected:
  // Every test leaves the global tracer stopped so later tests (and other
  // suites in this process) start from the inactive state.
  void TearDown() override { Tracer::Global().Stop(); }
};

TEST_F(TracerTest, InactiveByDefaultAndScopesAreNoOps) {
  Tracer& tracer = Tracer::Global();
  EXPECT_FALSE(tracer.active());
  {
    TraceScope scope("never.recorded");
    TraceInstant("also.never");
  }
  // Without Start there is no session to collect.
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST_F(TracerTest, CollectSeesSpansAndInstants) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  if (!kMetricsEnabled) {
    EXPECT_FALSE(tracer.active());
    EXPECT_TRUE(tracer.Collect().empty());
    return;
  }
  ASSERT_TRUE(tracer.active());
  {
    TraceScope outer("outer", 2, -1, 42);
    TraceInstant("marker", 2, 1, 7);
    TraceScope inner("inner");
  }
  tracer.Stop();
  EXPECT_FALSE(tracer.active());

  std::vector<Tracer::ThreadTrace> threads = tracer.Collect();
  ASSERT_EQ(threads.size(), 1u);
  const Tracer::ThreadTrace& main_thread = threads[0];
  EXPECT_EQ(main_thread.dropped, 0u);
  ASSERT_EQ(main_thread.events.size(), 5u);
  // LIFO scope nesting: outer-B, marker, inner-B, inner-E, outer-E.
  EXPECT_STREQ(main_thread.events[0].name, "outer");
  EXPECT_EQ(main_thread.events[0].phase, TraceEventPhase::kBegin);
  EXPECT_EQ(main_thread.events[0].level, 2);
  EXPECT_EQ(main_thread.events[0].value, 42);
  EXPECT_STREQ(main_thread.events[1].name, "marker");
  EXPECT_EQ(main_thread.events[1].phase, TraceEventPhase::kInstant);
  EXPECT_STREQ(main_thread.events[2].name, "inner");
  EXPECT_STREQ(main_thread.events[3].name, "inner");
  EXPECT_EQ(main_thread.events[3].phase, TraceEventPhase::kEnd);
  EXPECT_STREQ(main_thread.events[4].name, "outer");
  EXPECT_EQ(main_thread.events[4].phase, TraceEventPhase::kEnd);
  // Timestamps never decrease within the thread.
  for (size_t i = 1; i < main_thread.events.size(); ++i) {
    EXPECT_GE(main_thread.events[i].ts_ns, main_thread.events[i - 1].ts_ns);
  }
}

TEST_F(TracerTest, StartResetsThePreviousSession) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { TraceScope scope("first.session"); }
  tracer.Stop();
  tracer.Start();
  { TraceScope scope("second.session"); }
  tracer.Stop();
  if (!kMetricsEnabled) return;
  std::vector<Tracer::ThreadTrace> threads = tracer.Collect();
  ASSERT_EQ(threads.size(), 1u);
  for (const TraceEvent& event : threads[0].events) {
    EXPECT_STREQ(event.name, "second.session");
  }
}

/// Structural validation of an exported document, mirroring what
/// `statsdiff --validate-trace` enforces: envelope shape, required fields,
/// balanced B/E per tid, non-decreasing per-tid timestamps.
void ValidateChromeTrace(const std::string& json, size_t* span_events_out) {
  auto doc_or = io::ParseJson(json);
  ASSERT_TRUE(doc_or.ok()) << doc_or.status().ToString();
  const io::JsonValue& doc = *doc_or;
  ASSERT_TRUE(doc.is_object());
  const io::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  struct Track {
    std::string tid;
    std::vector<std::string> open;
    double last_ts = -1;
  };
  std::vector<Track> tracks;
  size_t span_events = 0;
  for (const io::JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const io::JsonValue* name = event.Find("name");
    const io::JsonValue* ph = event.Find("ph");
    const io::JsonValue* ts = event.Find("ts");
    const io::JsonValue* tid = event.Find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_TRUE(name->is_string());
    EXPECT_FALSE(name->string_value.empty());
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->is_number());
    ASSERT_NE(event.Find("pid"), nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_TRUE(tid->is_number());

    Track* track = nullptr;
    for (Track& t : tracks) {
      if (t.tid == tid->literal) track = &t;
    }
    if (track == nullptr) {
      tracks.push_back(Track{tid->literal, {}, -1});
      track = &tracks.back();
    }
    EXPECT_GE(ts->number_value, track->last_ts)
        << "timestamp went backwards on tid " << tid->literal;
    track->last_ts = ts->number_value;

    const std::string& phase = ph->string_value;
    if (phase == "B") {
      ++span_events;
      track->open.push_back(name->string_value);
    } else if (phase == "E") {
      ++span_events;
      ASSERT_FALSE(track->open.empty())
          << "unmatched E \"" << name->string_value << "\"";
      EXPECT_EQ(track->open.back(), name->string_value);
      track->open.pop_back();
    } else if (phase == "i") {
      const io::JsonValue* scope = event.Find("s");
      ASSERT_NE(scope, nullptr);
      EXPECT_TRUE(scope->is_string());
    }
  }
  for (const Track& track : tracks) {
    EXPECT_TRUE(track.open.empty())
        << "unclosed span \"" << track.open.back() << "\" on tid "
        << track.tid;
  }
  if (span_events_out != nullptr) *span_events_out = span_events;
}

TEST_F(TracerTest, ChromeJsonValidatesAndIsBalanced) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  {
    TraceScope run("run", -1, -1, 3);
    for (int level = 2; level <= 4; ++level) {
      TraceScope level_scope("level", level);
      TraceInstant("candidates", level, -1, 100 * level);
    }
  }
  tracer.Stop();
  size_t span_events = 0;
  ValidateChromeTrace(tracer.ToChromeJson(), &span_events);
  if (kMetricsEnabled) {
    EXPECT_EQ(span_events, 8u);  // run + 3 levels, begin and end each.
  } else {
    EXPECT_EQ(span_events, 0u);
  }
}

TEST_F(TracerTest, MultithreadedExportKeepsThreadsApartAndBalanced) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        TraceScope scope("worker.task", -1, t, i);
        TraceInstant("worker.tick", -1, t, i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  { TraceScope main_scope("main.join"); }
  tracer.Stop();

  if (kMetricsEnabled) {
    // One track per worker plus the main thread, each fully buffered.
    std::vector<Tracer::ThreadTrace> threads = tracer.Collect();
    EXPECT_EQ(threads.size(), static_cast<size_t>(kThreads) + 1);
    for (const Tracer::ThreadTrace& thread : threads) {
      EXPECT_EQ(thread.dropped, 0u);
    }
  }
  ValidateChromeTrace(tracer.ToChromeJson(), nullptr);
}

TEST_F(TracerTest, RingOverflowStillExportsAValidTrace) {
  Tracer& tracer = Tracer::Global();
  // Tiny rings so the span stream wraps many times; ends whose begins were
  // overwritten must be re-balanced away, and still-open begins closed.
  tracer.Start(/*events_per_thread=*/16);
  {
    TraceScope outer("outer");
    for (int i = 0; i < 500; ++i) {
      TraceScope inner("inner", -1, -1, i);
      TraceInstant("tick", -1, -1, i);
    }
  }
  tracer.Stop();

  if (kMetricsEnabled) {
    std::vector<Tracer::ThreadTrace> threads = tracer.Collect();
    ASSERT_EQ(threads.size(), 1u);
    EXPECT_GT(threads[0].dropped, 0u);
    EXPECT_LE(threads[0].events.size(), 16u);
    // The drop total must be visible in the exported document too.
    const std::string json = tracer.ToChromeJson();
    EXPECT_NE(json.find("dropped_events"), std::string::npos);
  }
  ValidateChromeTrace(tracer.ToChromeJson(), nullptr);
}

TEST_F(TracerTest, WriteChromeJsonProducesALoadableFile) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  { TraceScope scope("file.span"); }
  tracer.Stop();
  const std::string path =
      ::testing::TempDir() + "/corrmine_trace_test.json";
  Status status = tracer.WriteChromeJson(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  ValidateChromeTrace(content.str(), nullptr);
}

TEST(TraceRingTest, DroppedAccessorMatchesSnapshot) {
  TraceRing ring(8);
  EXPECT_EQ(ring.Dropped(), 0u);
  for (uint64_t i = 0; i < 8; ++i) {
    ring.Append(MakeEvent("e", i, TraceEventPhase::kInstant));
  }
  EXPECT_EQ(ring.Dropped(), 0u);  // Exactly full: nothing overwritten yet.
  for (uint64_t i = 0; i < 5; ++i) {
    ring.Append(MakeEvent("e", 8 + i, TraceEventPhase::kInstant));
  }
  EXPECT_EQ(ring.Dropped(), 5u);
  EXPECT_EQ(ring.Snapshot().dropped, 5u);
}

TEST_F(TracerTest, DroppedEventsSumsAcrossRingsAndResetsOnStart) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(/*events_per_thread=*/8);
  for (int i = 0; i < 100; ++i) TraceInstant("spam", -1, -1, i);
  tracer.Stop();
  if (kMetricsEnabled) {
    EXPECT_EQ(tracer.DroppedEvents(), 100u - 8u);
  } else {
    EXPECT_EQ(tracer.DroppedEvents(), 0u);
  }
  // A fresh session drops the old rings — and their drop counts.
  tracer.Start();
  { TraceScope scope("calm"); }
  tracer.Stop();
  EXPECT_EQ(tracer.DroppedEvents(), 0u);
}

TEST_F(TracerTest, ThreadRingIfCachedRequiresRegistrationAndSession) {
  Tracer& tracer = Tracer::Global();
  // Inactive tracer: never returns a ring.
  EXPECT_EQ(tracer.ThreadRingIfCached(), nullptr);
  tracer.Start();
  if (!kMetricsEnabled) {
    EXPECT_EQ(tracer.ThreadRingIfCached(), nullptr);
    return;
  }
  // Active but this thread has not traced yet this session: still nullptr
  // (the async-signal-safe path must never register).
  EXPECT_EQ(tracer.ThreadRingIfCached(), nullptr);
  TraceRing* ring = tracer.ThreadRing();
  EXPECT_EQ(tracer.ThreadRingIfCached(), ring);
  tracer.Stop();
  EXPECT_EQ(tracer.ThreadRingIfCached(), nullptr);
  // A new session invalidates the old cached ring until re-registration.
  tracer.Start();
  EXPECT_EQ(tracer.ThreadRingIfCached(), nullptr);
  EXPECT_EQ(tracer.ThreadRingIfCached(), tracer.ThreadRingIfCached());
  tracer.Stop();
}

TEST(PeakRssTest, ReportsAPlausiblyPositiveValue) {
#if defined(__unix__) || defined(__APPLE__)
  // Any live process has resident pages; exact value is machine state.
  EXPECT_GT(PeakRssBytes(), 0u);
#else
  SUCCEED();
#endif
}

}  // namespace
}  // namespace corrmine
