// Differential testing across the independent mining implementations: the
// same database must yield the same frequent itemsets from Apriori, Eclat,
// FP-growth and a from-scratch brute-force enumerator, and the same
// chi-squared verdicts from every CountProvider and from the reference
// miner. Any two implementations share almost no code, so agreement here is
// strong evidence of correctness; disagreement pinpoints the liar.

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "itemset/count_provider.h"
#include "itemset/counting_column.h"
#include "itemset/sharded_database.h"
#include "mining/apriori.h"
#include "mining/eclat.h"
#include "mining/fp_growth.h"

namespace corrmine {
namespace {

/// Canonical form for comparing frequent-itemset results: map from itemset
/// to count (the vectors differ in order across algorithms by design).
std::map<Itemset, uint64_t> AsMap(const std::vector<FrequentItemset>& v) {
  std::map<Itemset, uint64_t> m;
  for (const FrequentItemset& f : v) {
    auto [it, inserted] = m.emplace(f.itemset, f.count);
    EXPECT_TRUE(inserted) << "duplicate itemset " << f.itemset.ToString();
  }
  return m;
}

/// Reference enumerator sharing no code with the miners: materializes every
/// itemset up to `max_level` by recursive extension, counting via linear
/// basket scans.
void BruteForceExtend(const TransactionDatabase& db, uint64_t min_count,
                      int max_level, const Itemset& prefix, ItemId first,
                      std::map<Itemset, uint64_t>* out) {
  for (ItemId item = first; item < db.num_items(); ++item) {
    Itemset candidate = prefix.WithItem(item);
    uint64_t count = 0;
    for (size_t row = 0; row < db.num_baskets(); ++row) {
      const std::vector<ItemId>& basket = db.basket(row);
      bool all = true;
      for (size_t j = 0; j < candidate.size(); ++j) {
        if (!std::binary_search(basket.begin(), basket.end(),
                                candidate.item(j))) {
          all = false;
          break;
        }
      }
      if (all) ++count;
    }
    if (count < min_count) continue;  // Supersets can't be frequent either.
    out->emplace(candidate, count);
    if (max_level == 0 || static_cast<int>(candidate.size()) < max_level) {
      BruteForceExtend(db, min_count, max_level, candidate, item + 1, out);
    }
  }
}

TransactionDatabase SeededQuest(uint64_t seed) {
  datagen::QuestOptions quest;
  quest.num_transactions = 800;
  quest.num_items = 40;
  quest.avg_transaction_size = 6.0;
  quest.num_patterns = 10;
  quest.seed = seed;
  auto db = datagen::GenerateQuestData(quest);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

TEST(DifferentialMinersTest, FourImplementationsAgreeOnFrequentItemsets) {
  for (uint64_t seed : {1997u, 42u, 7u}) {
    TransactionDatabase db = SeededQuest(seed);
    constexpr double kMinSupport = 0.02;
    constexpr int kMaxLevel = 4;
    uint64_t min_count = static_cast<uint64_t>(
        std::ceil(kMinSupport * static_cast<double>(db.num_baskets()) -
                  1e-9));

    BitmapCountProvider provider(db);
    AprioriOptions apriori;
    apriori.min_support_fraction = kMinSupport;
    apriori.max_level = kMaxLevel;
    auto from_apriori =
        MineFrequentItemsets(provider, db.num_items(), apriori);
    ASSERT_TRUE(from_apriori.ok()) << from_apriori.status().ToString();

    EclatOptions eclat;
    eclat.min_support_fraction = kMinSupport;
    eclat.max_level = kMaxLevel;
    auto from_eclat = MineFrequentItemsetsEclat(db, eclat);
    ASSERT_TRUE(from_eclat.ok()) << from_eclat.status().ToString();

    FpGrowthOptions fp;
    fp.min_support_fraction = kMinSupport;
    fp.max_level = kMaxLevel;
    auto from_fp = MineFrequentItemsetsFpGrowth(db, fp);
    ASSERT_TRUE(from_fp.ok()) << from_fp.status().ToString();

    std::map<Itemset, uint64_t> reference;
    BruteForceExtend(db, min_count, kMaxLevel, Itemset{}, 0, &reference);

    std::map<Itemset, uint64_t> apriori_map = AsMap(*from_apriori);
    std::map<Itemset, uint64_t> eclat_map = AsMap(*from_eclat);
    std::map<Itemset, uint64_t> fp_map = AsMap(*from_fp);

    EXPECT_FALSE(reference.empty()) << "degenerate fixture at seed " << seed;
    EXPECT_EQ(apriori_map, reference) << "apriori diverged at seed " << seed;
    EXPECT_EQ(eclat_map, reference) << "eclat diverged at seed " << seed;
    EXPECT_EQ(fp_map, reference) << "fp-growth diverged at seed " << seed;
  }
}

TEST(DifferentialMinersTest, AprioriIdenticalAcrossCountProviders) {
  TransactionDatabase db = SeededQuest(1997);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());

  AprioriOptions options;
  options.min_support_fraction = 0.02;
  options.max_level = 3;
  auto from_scan = MineFrequentItemsets(scan, db.num_items(), options);
  auto from_bitmap = MineFrequentItemsets(bitmap, db.num_items(), options);
  auto from_cached = MineFrequentItemsets(cached, db.num_items(), options);
  ASSERT_TRUE(from_scan.ok());
  ASSERT_TRUE(from_bitmap.ok());
  ASSERT_TRUE(from_cached.ok());
  EXPECT_EQ(AsMap(*from_scan), AsMap(*from_bitmap));
  EXPECT_EQ(AsMap(*from_scan), AsMap(*from_cached));
}

/// Fingerprint of a mining result, including the new LevelStats columns —
/// two results agree iff rules, statistics and per-level accounting match.
std::string MiningFingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString() + ":" +
           std::to_string(rule.chi2.statistic) + ";";
  }
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.level) + "/" +
           std::to_string(level.candidates) + "/" +
           std::to_string(level.discards) + "/" +
           std::to_string(level.chi2_tests) + "/" +
           std::to_string(level.masked_cells) + "/" +
           std::to_string(level.significant) + "/" +
           std::to_string(level.not_significant) + ";";
  }
  return out;
}

TEST(DifferentialMinersTest, ChiSquaredVerdictsIdenticalAcrossProviders) {
  TransactionDatabase db = SeededQuest(42);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  CachedCountProvider cached(bitmap.index());

  MinerOptions options;
  options.support.min_count = 10;
  options.support.cell_fraction = 0.25;
  // Exercise the §3.3 masking path too, so masked-cell accounting is part
  // of the cross-provider contract.
  options.chi2.min_expected_cell = 1.0;

  auto from_scan = MineCorrelations(scan, db.num_items(), options);
  auto from_bitmap = MineCorrelations(bitmap, db.num_items(), options);
  auto from_cached = MineCorrelations(cached, db.num_items(), options);
  ASSERT_TRUE(from_scan.ok()) << from_scan.status().ToString();
  ASSERT_TRUE(from_bitmap.ok());
  ASSERT_TRUE(from_cached.ok());

  std::string fingerprint = MiningFingerprint(*from_scan);
  EXPECT_FALSE(from_scan->significant.empty()) << "degenerate fixture";
  EXPECT_EQ(MiningFingerprint(*from_bitmap), fingerprint);
  EXPECT_EQ(MiningFingerprint(*from_cached), fingerprint);
}

// The K-invariance contract (DESIGN.md §7), end to end: rules, statistics
// and per-level accounting must be byte-identical whether the dataset lives
// in one piece or in K shards, and whatever the thread count.
TEST(DifferentialMinersTest, VerdictsIdenticalAcrossShardsAndThreads) {
  TransactionDatabase db = SeededQuest(1997);
  BitmapCountProvider reference(db);

  MinerOptions options;
  options.support.min_count = 10;
  options.support.cell_fraction = 0.25;
  options.chi2.min_expected_cell = 1.0;

  auto baseline = MineCorrelations(reference, db.num_items(), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  std::string fingerprint = MiningFingerprint(*baseline);
  ASSERT_FALSE(baseline->significant.empty()) << "degenerate fixture";

  for (size_t shards : {1, 2, 4, 7}) {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Partition(db, shards);
    ShardedCountProvider provider(sharded);
    for (int threads : {1, 8}) {
      MinerOptions run = options;
      run.num_threads = threads;
      auto result = MineCorrelations(provider, db.num_items(), run);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(MiningFingerprint(*result), fingerprint)
          << "shards " << shards << " threads " << threads;
    }
  }
}

// The compressed counting-column provider is a full K-invariant peer of
// the bitmap provider: rules, statistics and per-level accounting must be
// byte-identical to the monolithic bitmap baseline for any (shards,
// threads) layout. Runs under TSan in verify.sh, so it also pins the
// morsel-parallel batch path data-race-free.
TEST(DifferentialMinersTest, CompressedProviderMatchesBitmapAcrossLayouts) {
  TransactionDatabase db = SeededQuest(1997);
  BitmapCountProvider reference(db);

  MinerOptions options;
  options.support.min_count = 10;
  options.support.cell_fraction = 0.25;
  options.chi2.min_expected_cell = 1.0;

  auto baseline = MineCorrelations(reference, db.num_items(), options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string fingerprint = MiningFingerprint(*baseline);
  ASSERT_FALSE(baseline->significant.empty()) << "degenerate fixture";

  for (size_t shards : {1, 2, 4, 7}) {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Partition(db, shards);
    CompressedCountProvider provider(sharded);
    for (int threads : {1, 8}) {
      MinerOptions run = options;
      run.num_threads = threads;
      auto result = MineCorrelations(provider, db.num_items(), run);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(MiningFingerprint(*result), fingerprint)
          << "shards " << shards << " threads " << threads;
    }
  }
}

// Shard-native Eclat must reproduce the monolithic miner's itemsets and
// counts exactly, for any K and thread count.
TEST(DifferentialMinersTest, ShardedEclatMatchesMonolithic) {
  TransactionDatabase db = SeededQuest(42);
  EclatOptions options;
  options.min_support_fraction = 0.02;
  options.max_level = 4;
  auto baseline = MineFrequentItemsetsEclat(db, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (size_t shards : {1, 3, 7}) {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Partition(db, shards);
    for (int threads : {1, 8}) {
      EclatOptions run = options;
      run.num_threads = threads;
      auto result = MineFrequentItemsetsEclat(sharded, run);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->size(), baseline->size())
          << "shards " << shards << " threads " << threads;
      for (size_t i = 0; i < baseline->size(); ++i) {
        ASSERT_EQ((*result)[i].itemset, (*baseline)[i].itemset);
        ASSERT_EQ((*result)[i].count, (*baseline)[i].count);
      }
    }
  }
}

TEST(DifferentialMinersTest, LevelWiseMatchesBruteForceMiner) {
  TransactionDatabase db = SeededQuest(7);
  BitmapCountProvider provider(db);

  MinerOptions options;
  options.support.min_count = 10;
  options.support.cell_fraction = 0.25;
  options.chi2.min_expected_cell = 1.0;

  auto level_wise = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(level_wise.ok()) << level_wise.status().ToString();
  auto brute = MineCorrelationsBruteForce(provider, db.num_items(), options,
                                          /*max_level=*/4);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();

  // The brute-force miner enumerates in lexicographic order per level; the
  // level-wise miner streams joins. Compare as sets plus level stats.
  auto sorted_rules = [](const MiningResult& r) {
    std::vector<std::pair<Itemset, double>> rules;
    for (const CorrelationRule& rule : r.significant) {
      rules.emplace_back(rule.itemset, rule.chi2.statistic);
    }
    std::sort(rules.begin(), rules.end());
    return rules;
  };
  EXPECT_EQ(sorted_rules(*level_wise), sorted_rules(*brute));
  ASSERT_EQ(level_wise->levels.size(), brute->levels.size());
  for (size_t i = 0; i < level_wise->levels.size(); ++i) {
    const LevelStats& a = level_wise->levels[i];
    const LevelStats& b = brute->levels[i];
    EXPECT_EQ(a.candidates, b.candidates) << "level " << a.level;
    EXPECT_EQ(a.discards, b.discards) << "level " << a.level;
    EXPECT_EQ(a.chi2_tests, b.chi2_tests) << "level " << a.level;
    EXPECT_EQ(a.masked_cells, b.masked_cells) << "level " << a.level;
    EXPECT_EQ(a.significant, b.significant) << "level " << a.level;
    EXPECT_EQ(a.not_significant, b.not_significant) << "level " << a.level;
  }
}

}  // namespace
}  // namespace corrmine
