# End-to-end CLI smoke test: generate a small dataset, mine it, and run the
# rule baseline; any non-zero exit fails the test.
execute_process(
  COMMAND ${CLI} generate quest --baskets 500 --out ${WORKDIR}/smoke.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed: ${rc}")
endif()
execute_process(
  COMMAND ${CLI} mine ${WORKDIR}/smoke.txt --support-count 25
          --cell-fraction 0.26 --max-level 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mine failed: ${rc}")
endif()
if(NOT out MATCHES "level 2")
  message(FATAL_ERROR "mine output missing level stats: ${out}")
endif()
execute_process(
  COMMAND ${CLI} rules ${WORKDIR}/smoke.txt --min-support 0.02
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rules failed: ${rc}")
endif()
execute_process(COMMAND ${CLI} bogus RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command should fail")
endif()

# Exact-test of one itemset.
execute_process(
  COMMAND ${CLI} check ${WORKDIR}/smoke.txt --items 0,1 --rounds 50
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "exact")
  message(FATAL_ERROR "check failed: ${rc} ${out}")
endif()

# Result serialization via --out.
execute_process(
  COMMAND ${CLI} mine ${WORKDIR}/smoke.txt --support-count 25
          --cell-fraction 0.26 --max-level 2 --out ${WORKDIR}/result.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR NOT EXISTS ${WORKDIR}/result.txt)
  message(FATAL_ERROR "mine --out failed")
endif()

# Categorical dependencies from CSV.
file(WRITE ${WORKDIR}/deps.csv
"color,size\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nred,small\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nblue,big\nred,big\nred,big\nred,big\nblue,small\nblue,small\nblue,small\n")
execute_process(
  COMMAND ${CLI} dependencies ${WORKDIR}/deps.csv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0 OR NOT out MATCHES "color")
  message(FATAL_ERROR "dependencies failed: ${rc} ${out}")
endif()
