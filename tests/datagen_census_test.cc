#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/census_generator.h"
#include "itemset/count_provider.h"

namespace corrmine::datagen {
namespace {

TEST(CensusModelTest, MarginalsMatchPublishedTable) {
  const CensusModel& model = CensusModel::Paper();
  // Marginals implied by the paper's pairwise supports (e.g. P(i0) = 18%,
  // P(i1) ~ 90.2%, P(i4) ~ 6.6%).
  EXPECT_NEAR(model.Marginal(0), 0.180, 0.005);
  EXPECT_NEAR(model.Marginal(1), 0.902, 0.005);
  EXPECT_NEAR(model.Marginal(4), 0.066, 0.005);
  EXPECT_NEAR(model.Marginal(7), 0.615, 0.01);
  EXPECT_NEAR(model.Marginal(8), 0.463, 0.01);
}

TEST(CensusModelTest, JointsAreSymmetricAndBounded) {
  const CensusModel& model = CensusModel::Paper();
  for (int i = 0; i < kCensusNumItems; ++i) {
    for (int j = 0; j < kCensusNumItems; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(model.PairJoint(i, j), model.PairJoint(j, i));
      EXPECT_GE(model.PairJoint(i, j), 0.0);
      EXPECT_LE(model.PairJoint(i, j),
                std::min(model.Marginal(i), model.Marginal(j)) + 0.01);
    }
  }
}

TEST(CensusModelTest, StructuralZerosPresent) {
  const CensusModel& model = CensusModel::Paper();
  EXPECT_DOUBLE_EQ(model.PairJoint(4, 5), 0.0);  // Non-citizen & US-born.
}

TEST(CensusLatentCorrelationTest, ProducesValidCorrelationMatrix) {
  auto corr = BuildCensusLatentCorrelation(CensusModel::Paper());
  ASSERT_TRUE(corr.ok());
  for (int i = 0; i < kCensusNumItems; ++i) {
    EXPECT_NEAR(corr->at(i, i), 1.0, 1e-9);
    for (int j = 0; j < kCensusNumItems; ++j) {
      EXPECT_LE(std::fabs(corr->at(i, j)), 1.0 + 1e-9);
      EXPECT_NEAR(corr->at(i, j), corr->at(j, i), 1e-12);
    }
  }
  EXPECT_TRUE(linalg::CholeskyFactor(*corr).ok());
}

TEST(CensusGeneratorTest, ShapeAndDictionary) {
  CensusOptions options;
  options.num_persons = 2000;
  auto db = GenerateCensusData(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_baskets(), 2000u);
  EXPECT_EQ(db->num_items(), static_cast<ItemId>(kCensusNumItems));
  EXPECT_EQ(*db->dictionary().Name(0), "i0");
  EXPECT_EQ(*db->dictionary().Name(9), "i9");
  EXPECT_EQ(CensusItems()[2].non_attribute, std::string("veteran"));
}

TEST(CensusGeneratorTest, MarginalsCloseToTargets) {
  CensusOptions options;
  options.num_persons = 30370;
  auto db = GenerateCensusData(options);
  ASSERT_TRUE(db.ok());
  const CensusModel& model = CensusModel::Paper();
  for (int i = 0; i < kCensusNumItems; ++i) {
    double observed = *db->ItemProbability(i);
    // 3-sigma sampling band plus copula/fixup slack.
    EXPECT_NEAR(observed, model.Marginal(i), 0.02)
        << "item i" << i;
  }
}

TEST(CensusGeneratorTest, PairwiseJointsCloseToTargets) {
  CensusOptions options;
  options.num_persons = 30370;
  auto db = GenerateCensusData(options);
  ASSERT_TRUE(db.ok());
  VerticalIndex index(*db);
  const CensusModel& model = CensusModel::Paper();
  double n = static_cast<double>(db->num_baskets());
  for (int i = 0; i < kCensusNumItems; ++i) {
    for (int j = i + 1; j < kCensusNumItems; ++j) {
      double observed =
          static_cast<double>(index.CountAllPresent(
              Itemset{static_cast<ItemId>(i), static_cast<ItemId>(j)})) /
          n;
      EXPECT_NEAR(observed, model.PairJoint(i, j), 0.025)
          << "pair (i" << i << ", i" << j << ")";
    }
  }
}

TEST(CensusGeneratorTest, StructuralZerosHold) {
  CensusOptions options;
  options.num_persons = 10000;
  auto db = GenerateCensusData(options);
  ASSERT_TRUE(db.ok());
  for (size_t row = 0; row < db->num_baskets(); ++row) {
    const auto& basket = db->basket(row);
    bool i1 = std::binary_search(basket.begin(), basket.end(), ItemId{1});
    bool i4 = std::binary_search(basket.begin(), basket.end(), ItemId{4});
    bool i5 = std::binary_search(basket.begin(), basket.end(), ItemId{5});
    bool i8 = std::binary_search(basket.begin(), basket.end(), ItemId{8});
    EXPECT_FALSE(i8 && !i1) << "male with 3+ children at row " << row;
    EXPECT_FALSE(i4 && i5) << "US-born non-citizen at row " << row;
  }
}

TEST(CensusGeneratorTest, DeterministicForSeed) {
  CensusOptions options;
  options.num_persons = 500;
  auto a = GenerateCensusData(options);
  auto b = GenerateCensusData(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a->basket(i), b->basket(i));
  }
}

TEST(CensusGeneratorTest, RejectsZeroPersons) {
  CensusOptions bad;
  bad.num_persons = 0;
  EXPECT_TRUE(GenerateCensusData(bad).status().IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine::datagen
