#include <gtest/gtest.h>

#include "core/border.h"
#include "core/chi_squared_miner.h"
#include "itemset/count_provider.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(BorderTest, KeepsOnlyMinimalSets) {
  CorrelationBorder border({Itemset{1, 2}, Itemset{1, 2, 3}, Itemset{4, 5},
                            Itemset{1, 2, 3, 4}});
  ASSERT_EQ(border.size(), 2u);
  EXPECT_TRUE(border.IsOnBorder(Itemset{1, 2}));
  EXPECT_TRUE(border.IsOnBorder(Itemset{4, 5}));
  EXPECT_FALSE(border.IsOnBorder(Itemset{1, 2, 3}));
}

TEST(BorderTest, DeduplicatesInput) {
  CorrelationBorder border({Itemset{1, 2}, Itemset{2, 1}, Itemset{1, 2}});
  EXPECT_EQ(border.size(), 1u);
}

TEST(BorderTest, ClassifiesByUpwardClosure) {
  CorrelationBorder border({Itemset{1, 2}, Itemset{3, 4, 5}});
  EXPECT_TRUE(border.IsAboveBorder(Itemset{1, 2}));
  EXPECT_TRUE(border.IsAboveBorder(Itemset{0, 1, 2}));
  EXPECT_TRUE(border.IsAboveBorder(Itemset{1, 2, 3, 4, 5}));
  EXPECT_FALSE(border.IsAboveBorder(Itemset{1, 3}));
  EXPECT_FALSE(border.IsAboveBorder(Itemset{3, 4}));
  EXPECT_FALSE(border.IsAboveBorder(Itemset{}));
}

TEST(BorderTest, EmptyBorder) {
  CorrelationBorder border;
  EXPECT_TRUE(border.empty());
  EXPECT_FALSE(border.IsAboveBorder(Itemset{1}));
}

TEST(BorderTest, IncomparableSetsAllKept) {
  CorrelationBorder border(
      {Itemset{1, 2}, Itemset{2, 3}, Itemset{1, 3}});
  EXPECT_EQ(border.size(), 3u);
  // The triangle {1,2,3} is above all three.
  EXPECT_TRUE(border.IsAboveBorder(Itemset{1, 2, 3}));
}

TEST(BorderTest, BuiltFromMinerOutput) {
  auto db = testing::RandomCorrelatedDatabase(6, 400, 0.9, 21);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 4;
  options.support.cell_fraction = 0.26;
  auto result = MineCorrelations(provider, db.num_items(), options);
  ASSERT_TRUE(result.ok());
  std::vector<Itemset> sets;
  for (const auto& rule : result->significant) sets.push_back(rule.itemset);
  CorrelationBorder border(std::move(sets));
  // Miner output is already minimal, so nothing should be dropped.
  EXPECT_EQ(border.size(), result->significant.size());
  for (const auto& rule : result->significant) {
    EXPECT_TRUE(border.IsOnBorder(rule.itemset));
    EXPECT_TRUE(border.IsAboveBorder(rule.itemset.WithItem(0).WithItem(5)));
  }
}

}  // namespace
}  // namespace corrmine
