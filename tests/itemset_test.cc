#include <gtest/gtest.h>

#include "itemset/bitmap.h"
#include "itemset/count_provider.h"
#include "itemset/itemset.h"
#include "itemset/transaction_database.h"
#include "test_util.h"

namespace corrmine {
namespace {

TEST(ItemsetTest, ConstructionSortsAndDedupes) {
  Itemset s({5, 1, 3, 1, 5});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.item(0), 1u);
  EXPECT_EQ(s.item(1), 3u);
  EXPECT_EQ(s.item(2), 5u);
}

TEST(ItemsetTest, ContainsAndContainsAll) {
  Itemset s{2, 4, 6};
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_TRUE(s.ContainsAll(Itemset{2, 6}));
  EXPECT_TRUE(s.ContainsAll(Itemset{}));
  EXPECT_FALSE(s.ContainsAll(Itemset{2, 5}));
}

TEST(ItemsetTest, UnionMergesSorted) {
  Itemset a{1, 3};
  Itemset b{2, 3, 9};
  Itemset u = a.Union(b);
  EXPECT_EQ(u, (Itemset{1, 2, 3, 9}));
}

TEST(ItemsetTest, WithAndWithoutItem) {
  Itemset s{1, 5};
  EXPECT_EQ(s.WithItem(3), (Itemset{1, 3, 5}));
  EXPECT_EQ(s.WithItem(5), s);
  EXPECT_EQ(s.WithoutItem(1), (Itemset{5}));
  EXPECT_EQ(s.WithoutItem(7), s);
}

TEST(ItemsetTest, SubsetsMissingOne) {
  Itemset s{1, 2, 3};
  auto subs = s.SubsetsMissingOne();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], (Itemset{2, 3}));
  EXPECT_EQ(subs[1], (Itemset{1, 3}));
  EXPECT_EQ(subs[2], (Itemset{1, 2}));
}

TEST(ItemsetTest, OrderingAndEquality) {
  EXPECT_LT(Itemset({1, 2}), Itemset({1, 3}));
  EXPECT_LT(Itemset({1}), Itemset({1, 2}));   // Prefix sorts first.
  EXPECT_LT(Itemset({0, 9}), Itemset({1}));   // Lexicographic on contents.
  EXPECT_EQ(Itemset({2, 1}), Itemset({1, 2}));
}

TEST(ItemsetTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Itemset({3, 1}).Hash(), Itemset({1, 3}).Hash());
  EXPECT_NE(Itemset({1, 3}).Hash(), Itemset({1, 4}).Hash());
  EXPECT_NE(Itemset({}).Hash(), Itemset({0}).Hash());
}

TEST(ItemsetTest, ToStringFormat) {
  EXPECT_EQ(Itemset({7, 2}).ToString(), "{2, 7}");
  EXPECT_EQ(Itemset{}.ToString(), "{}");
}

// --- Bitmap ---

TEST(BitmapTest, SetTestClearCount) {
  Bitmap b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(64));
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, AndCountMatchesManual) {
  Bitmap a(200), b(200);
  for (size_t i = 0; i < 200; i += 3) a.Set(i);
  for (size_t i = 0; i < 200; i += 5) b.Set(i);
  uint64_t expected = 0;
  for (size_t i = 0; i < 200; i += 15) ++expected;
  EXPECT_EQ(a.AndCount(b), expected);
}

TEST(BitmapTest, AndWithIntersects) {
  Bitmap a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  a.AndWith(b);
  EXPECT_FALSE(a.Test(1));
  EXPECT_TRUE(a.Test(65));
}

TEST(BitmapTest, MultiAndCount) {
  Bitmap a(100), b(100), c(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);
  for (size_t i = 0; i < 100; i += 3) b.Set(i);
  for (size_t i = 0; i < 100; i += 4) c.Set(i);
  // Multiples of 12 below 100: 0, 12, ..., 96 -> 9 values.
  EXPECT_EQ(MultiAndCount({&a, &b, &c}), 9u);
  EXPECT_EQ(MultiAndCount({}), 0u);
}

// --- ItemDictionary ---

TEST(ItemDictionaryTest, InternsAndLooksUp) {
  ItemDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("tea"), 0u);
  EXPECT_EQ(dict.GetOrAdd("coffee"), 1u);
  EXPECT_EQ(dict.GetOrAdd("tea"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  ASSERT_TRUE(dict.Get("coffee").ok());
  EXPECT_EQ(*dict.Get("coffee"), 1u);
  EXPECT_TRUE(dict.Get("beer").status().IsNotFound());
  EXPECT_EQ(*dict.Name(0), "tea");
  EXPECT_TRUE(dict.Name(9).status().IsOutOfRange());
}

// --- TransactionDatabase ---

TEST(TransactionDatabaseTest, CountsAndMarginals) {
  auto db = testing::MakeDatabase(3, {{0, 1}, {1}, {0, 1, 2}, {}});
  EXPECT_EQ(db.num_baskets(), 4u);
  EXPECT_EQ(db.ItemCount(0), 2u);
  EXPECT_EQ(db.ItemCount(1), 3u);
  EXPECT_EQ(db.ItemCount(2), 1u);
  EXPECT_EQ(db.TotalItemOccurrences(), 6u);
  auto p = db.ItemProbability(1);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.75);
}

TEST(TransactionDatabaseTest, BasketsAreSortedAndDeduped) {
  TransactionDatabase db(5);
  ASSERT_TRUE(db.AddBasket({4, 2, 2, 0}).ok());
  EXPECT_EQ(db.basket(0), (std::vector<ItemId>{0, 2, 4}));
  EXPECT_EQ(db.ItemCount(2), 1u);  // Duplicate didn't double count.
}

TEST(TransactionDatabaseTest, RejectsOutOfRangeItems) {
  TransactionDatabase db(3);
  EXPECT_TRUE(db.AddBasket({0, 3}).IsOutOfRange());
  EXPECT_EQ(db.num_baskets(), 0u);
}

TEST(TransactionDatabaseTest, BasketContainsAll) {
  auto db = testing::MakeDatabase(4, {{0, 2, 3}});
  EXPECT_TRUE(db.BasketContainsAll(0, Itemset{0, 3}));
  EXPECT_FALSE(db.BasketContainsAll(0, Itemset{0, 1}));
  EXPECT_TRUE(db.BasketContainsAll(0, Itemset{}));
}

TEST(TransactionDatabaseTest, EmptyDatabaseMarginalErrors) {
  TransactionDatabase db(2);
  EXPECT_TRUE(db.ItemProbability(0).status().IsFailedPrecondition());
  EXPECT_TRUE(db.ItemProbability(5).status().IsOutOfRange());
}

// --- Count providers ---

class CountProviderTest : public ::testing::TestWithParam<int> {};

TEST_P(CountProviderTest, ProvidersAgreeOnRandomData) {
  auto db = testing::RandomIndependentDatabase(8, 300,
                                               /*seed=*/GetParam());
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  EXPECT_EQ(scan.num_baskets(), bitmap.num_baskets());
  datagen::Rng rng(GetParam() * 977 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ItemId> items;
    size_t size = 1 + rng.NextBelow(4);
    for (size_t i = 0; i < size; ++i) {
      items.push_back(static_cast<ItemId>(rng.NextBelow(8)));
    }
    Itemset s(items);
    EXPECT_EQ(scan.CountAllPresent(s), bitmap.CountAllPresent(s))
        << s.ToString();
  }
}

TEST_P(CountProviderTest, SingletonCountsMatchItemCounts) {
  auto db = testing::RandomIndependentDatabase(6, 200, GetParam() + 100);
  ScanCountProvider scan(db);
  BitmapCountProvider bitmap(db);
  for (ItemId i = 0; i < 6; ++i) {
    EXPECT_EQ(scan.CountAllPresent(Itemset{i}), db.ItemCount(i));
    EXPECT_EQ(bitmap.CountAllPresent(Itemset{i}), db.ItemCount(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountProviderTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace corrmine
