#include <gtest/gtest.h>

#include "stats/permutation_test.h"
#include "test_util.h"

namespace corrmine::stats {
namespace {

TEST(PermutationTest, RejectsPlantedCorrelation) {
  auto db = testing::RandomCorrelatedDatabase(3, 300, 0.95, 11);
  PermutationTestOptions options;
  options.rounds = 400;
  auto result = PermutationIndependenceTest(db, Itemset{0, 1}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->observed_statistic, 50.0);
  // Best attainable p-value is 1/(rounds+1).
  EXPECT_LE(result->p_value, 2.0 / 401.0);
  EXPECT_LT(result->chi_squared_p_value, 1e-6);
}

TEST(PermutationTest, AcceptsIndependentItems) {
  auto db = testing::RandomIndependentDatabase(3, 300, 13);
  PermutationTestOptions options;
  options.rounds = 300;
  auto result = PermutationIndependenceTest(db, Itemset{0, 1}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.01);
}

TEST(PermutationTest, AgreesWithChiSquaredWhenValid) {
  // Large n, balanced margins: the asymptotic approximation is good, so
  // the Monte Carlo p-value should be close to the chi-squared one.
  auto db = testing::RandomIndependentDatabase(2, 2000, 17);
  PermutationTestOptions options;
  options.rounds = 2000;
  auto result = PermutationIndependenceTest(db, Itemset{0, 1}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->p_value, result->chi_squared_p_value, 0.08);
}

TEST(PermutationTest, HandlesThreeWayItemsets) {
  auto db = testing::RandomCorrelatedDatabase(4, 250, 0.9, 23);
  PermutationTestOptions options;
  options.rounds = 200;
  auto result = PermutationIndependenceTest(db, Itemset{0, 1, 2}, options);
  ASSERT_TRUE(result.ok());
  // {0,1} correlated implies the triple is too (upward closure).
  EXPECT_LT(result->p_value, 0.05);
}

TEST(PermutationTest, DeterministicForSeed) {
  auto db = testing::RandomCorrelatedDatabase(3, 150, 0.7, 29);
  PermutationTestOptions options;
  options.rounds = 100;
  options.seed = 77;
  auto a = PermutationIndependenceTest(db, Itemset{0, 1}, options);
  auto b = PermutationIndependenceTest(db, Itemset{0, 1}, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->p_value, b->p_value);
}

TEST(PermutationTest, InputValidation) {
  TransactionDatabase empty(3);
  EXPECT_TRUE(PermutationIndependenceTest(empty, Itemset{0, 1})
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(3, 50, 1);
  EXPECT_TRUE(PermutationIndependenceTest(db, Itemset{0})
                  .status()
                  .IsInvalidArgument());
  PermutationTestOptions bad;
  bad.rounds = 0;
  EXPECT_TRUE(PermutationIndependenceTest(db, Itemset{0, 1}, bad)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace corrmine::stats
