// Tests for the additional frequent-itemset baselines (Eclat, FP-growth)
// and the maximal/closed post-processing and rule-measure panel.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/chi_squared_test.h"
#include "mining/eclat.h"
#include "mining/fp_growth.h"
#include "mining/maximal.h"
#include "mining/rule_measures.h"
#include "test_util.h"

namespace corrmine {
namespace {

std::map<Itemset, uint64_t> ToMap(const std::vector<FrequentItemset>& sets) {
  std::map<Itemset, uint64_t> m;
  for (const FrequentItemset& f : sets) m.emplace(f.itemset, f.count);
  return m;
}

std::map<Itemset, uint64_t> AprioriReference(const TransactionDatabase& db,
                                             double min_support,
                                             int max_level = 0) {
  BitmapCountProvider provider(db);
  AprioriOptions options;
  options.min_support_fraction = min_support;
  options.max_level = max_level;
  auto result = MineFrequentItemsets(provider, db.num_items(), options);
  CORRMINE_CHECK(result.ok()) << result.status().ToString();
  return ToMap(*result);
}

class BaselineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineEquivalence, EclatMatchesApriori) {
  auto db = testing::RandomCorrelatedDatabase(9, 300, 0.8, GetParam());
  EclatOptions options;
  options.min_support_fraction = 0.1;
  auto eclat = MineFrequentItemsetsEclat(db, options);
  ASSERT_TRUE(eclat.ok());
  EXPECT_EQ(ToMap(*eclat), AprioriReference(db, 0.1));
}

TEST_P(BaselineEquivalence, FpGrowthMatchesApriori) {
  auto db = testing::RandomCorrelatedDatabase(9, 300, 0.8, GetParam());
  FpGrowthOptions options;
  options.min_support_fraction = 0.1;
  auto fp = MineFrequentItemsetsFpGrowth(db, options);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(ToMap(*fp), AprioriReference(db, 0.1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(BaselineTest, MaxLevelRespectedEverywhere) {
  auto db = testing::RandomCorrelatedDatabase(6, 200, 0.9, 5);
  auto reference = AprioriReference(db, 0.05, 2);
  EclatOptions eclat_opts;
  eclat_opts.min_support_fraction = 0.05;
  eclat_opts.max_level = 2;
  auto eclat = MineFrequentItemsetsEclat(db, eclat_opts);
  ASSERT_TRUE(eclat.ok());
  EXPECT_EQ(ToMap(*eclat), reference);
  FpGrowthOptions fp_opts;
  fp_opts.min_support_fraction = 0.05;
  fp_opts.max_level = 2;
  auto fp = MineFrequentItemsetsFpGrowth(db, fp_opts);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(ToMap(*fp), reference);
}

TEST(BaselineTest, InputValidation) {
  TransactionDatabase empty(3);
  EXPECT_TRUE(MineFrequentItemsetsEclat(empty, EclatOptions())
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(MineFrequentItemsetsFpGrowth(empty, FpGrowthOptions())
                  .status()
                  .IsFailedPrecondition());
  auto db = testing::RandomIndependentDatabase(3, 30, 1);
  EclatOptions bad;
  bad.min_support_fraction = 0.0;
  EXPECT_TRUE(
      MineFrequentItemsetsEclat(db, bad).status().IsInvalidArgument());
}

// --- Maximal / closed ---

TEST(MaximalTest, HandExample) {
  // Frequent family: {a}, {b}, {c}, {a,b}, {a,c}, {a,b,c}? No — must be
  // downward closed; use {a},{b},{c},{a,b},{a,c} with {b,c} infrequent.
  std::vector<FrequentItemset> frequent = {
      {Itemset{0}, 10}, {Itemset{1}, 8},    {Itemset{2}, 7},
      {Itemset{0, 1}, 5}, {Itemset{0, 2}, 4},
  };
  auto maximal = MaximalFrequentItemsets(frequent);
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].itemset, (Itemset{0, 1}));
  EXPECT_EQ(maximal[1].itemset, (Itemset{0, 2}));
}

TEST(MaximalTest, LosslessnessProperty) {
  // A set is frequent iff it is a subset of some maximal set.
  auto db = testing::RandomCorrelatedDatabase(7, 250, 0.85, 9);
  EclatOptions options;
  options.min_support_fraction = 0.1;
  auto frequent = MineFrequentItemsetsEclat(db, options);
  ASSERT_TRUE(frequent.ok());
  auto maximal = MaximalFrequentItemsets(*frequent);
  for (const FrequentItemset& f : *frequent) {
    bool covered = false;
    for (const FrequentItemset& m : maximal) {
      if (m.itemset.ContainsAll(f.itemset)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << f.itemset.ToString();
  }
  // And maximal sets are incomparable.
  for (const FrequentItemset& a : maximal) {
    for (const FrequentItemset& b : maximal) {
      if (a.itemset == b.itemset) continue;
      EXPECT_FALSE(a.itemset.ContainsAll(b.itemset));
    }
  }
}

TEST(ClosedTest, CountsPreserved) {
  // Every frequent set's count must equal the max count among its closed
  // supersets.
  auto db = testing::RandomCorrelatedDatabase(6, 200, 0.9, 13);
  EclatOptions options;
  options.min_support_fraction = 0.1;
  auto frequent = MineFrequentItemsetsEclat(db, options);
  ASSERT_TRUE(frequent.ok());
  auto closed = ClosedFrequentItemsets(*frequent);
  EXPECT_LE(closed.size(), frequent->size());
  auto maximal = MaximalFrequentItemsets(*frequent);
  EXPECT_LE(maximal.size(), closed.size());
  for (const FrequentItemset& f : *frequent) {
    uint64_t best = 0;
    for (const FrequentItemset& c : closed) {
      if (c.itemset.ContainsAll(f.itemset)) {
        best = std::max(best, c.count);
      }
    }
    EXPECT_EQ(best, f.count) << f.itemset.ToString();
  }
}

// --- Rule measures ---

TEST(RuleMeasuresTest, TeaCoffeePanel) {
  // The paper's Example 1 joint: tc=20, t!c=5, !tc=70, !t!c=5 of n=100.
  std::vector<std::vector<ItemId>> baskets;
  for (int i = 0; i < 20; ++i) baskets.push_back({0, 1});
  for (int i = 0; i < 5; ++i) baskets.push_back({0});
  for (int i = 0; i < 70; ++i) baskets.push_back({1});
  for (int i = 0; i < 5; ++i) baskets.push_back({});
  auto db = testing::MakeDatabase(2, baskets);
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto m = ComputeRuleMeasures(*table);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->support, 0.20);
  EXPECT_DOUBLE_EQ(m->confidence, 0.80);
  EXPECT_NEAR(m->lift, 0.888888888888889, 1e-12);  // Paper's 0.89.
  EXPECT_NEAR(m->leverage, 0.20 - 0.25 * 0.90, 1e-12);
  // conviction = P(t) P(!c) / P(t !c) = 0.25*0.1/0.05 = 0.5 (< 1: rule
  // fires *more* falsely than independence would).
  EXPECT_NEAR(m->conviction, 0.5, 1e-12);
  EXPECT_LT(m->phi, 0.0);  // Negative correlation.
  // chi2 = n phi^2 for 2x2 tables.
  double chi2 = ComputeChiSquared(*table).statistic;
  EXPECT_NEAR(100.0 * m->phi * m->phi, chi2, 1e-9);
  EXPECT_NEAR(m->jaccard, 20.0 / 95.0, 1e-12);
}

TEST(RuleMeasuresTest, IndependentPanelIsNeutral) {
  auto db = testing::MakeDatabase(2, {{0, 1}, {0}, {1}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto m = ComputeRuleMeasures(*table);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->lift, 1.0, 1e-12);
  EXPECT_NEAR(m->leverage, 0.0, 1e-12);
  EXPECT_NEAR(m->conviction, 1.0, 1e-12);
  EXPECT_NEAR(m->phi, 0.0, 1e-12);
}

TEST(RuleMeasuresTest, ExceptionlessRuleHasInfiniteConviction) {
  auto db = testing::MakeDatabase(2, {{0, 1}, {0, 1}, {1}, {}});
  ScanCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  auto m = ComputeRuleMeasures(*table);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(std::isinf(m->conviction));
}

TEST(RuleMeasuresTest, Validation) {
  auto db = testing::RandomIndependentDatabase(3, 50, 3);
  ScanCountProvider provider(db);
  auto triple = ContingencyTable::Build(provider, Itemset{0, 1, 2});
  ASSERT_TRUE(triple.ok());
  EXPECT_TRUE(ComputeRuleMeasures(*triple).status().IsInvalidArgument());
  auto degenerate_db = testing::MakeDatabase(2, {{0, 1}, {1}});
  ScanCountProvider dp(degenerate_db);
  auto table = ContingencyTable::Build(dp, Itemset{0, 1});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(ComputeRuleMeasures(*table).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace corrmine
