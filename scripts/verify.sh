#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency-
# sensitive suites (the parallel mining engine, its pool, and the cached
# count provider). Run from the repository root:
#
#   scripts/verify.sh            # tier-1 + TSan miner tests
#   SKIP_TSAN=1 scripts/verify.sh  # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== TSan: parallel engine suites =="
  cmake -B build-tsan -S . -DCORRMINE_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j \
    --target thread_pool_test miner_test batch_tables_test \
    count_provider_cache_test >/dev/null
  (cd build-tsan &&
   ctest --output-on-failure \
     -R '^(thread_pool_test|miner_test|batch_tables_test|count_provider_cache_test)$')
fi

echo "verify: OK"
