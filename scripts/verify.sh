#!/usr/bin/env bash
# Tier-1 verification plus two hardening passes: the full test suite with
# the metrics layer compiled out (CORRMINE_METRICS=OFF must stay a working
# configuration), and a ThreadSanitizer run over the concurrency-sensitive
# suites (the parallel mining engine, its pool, and the cached count
# provider). Run from the repository root:
#
#   scripts/verify.sh                  # tier-1 + metrics-off + TSan
#   SKIP_TSAN=1 scripts/verify.sh      # skip the TSan stage
#   SKIP_METRICS_OFF=1 scripts/verify.sh  # skip the metrics-off stage
#
# Test slices by ctest label (tier-1 build):
#   (cd build && ctest -L unit)          # fast unit suites
#   (cd build && ctest -L differential)  # cross-implementation agreement
#   (cd build && ctest -L golden)        # paper-table golden snapshots
#   (cd build && ctest -L sharded)       # K-invariance / sharded core
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

echo "== sharded slice: K-invariance suites =="
(cd build && ctest --output-on-failure -L sharded)

if [[ "${SKIP_METRICS_OFF:-0}" != "1" ]]; then
  echo "== metrics compiled out: build + ctest =="
  cmake -B build-nometrics -S . -DCORRMINE_METRICS=OFF >/dev/null
  cmake --build build-nometrics -j >/dev/null
  (cd build-nometrics && ctest --output-on-failure -j)
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== TSan: parallel engine suites =="
  cmake -B build-tsan -S . -DCORRMINE_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j \
    --target thread_pool_test miner_test batch_tables_test \
    count_provider_cache_test sharded_database_test >/dev/null
  (cd build-tsan &&
   ctest --output-on-failure \
     -R '^(thread_pool_test|miner_test|batch_tables_test|count_provider_cache_test|sharded_database_test)$')
fi

echo "verify: OK"
