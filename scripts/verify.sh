#!/usr/bin/env bash
# Tier-1 verification plus hardening passes: the stats regression sentinel
# across a threads x shards matrix, a trace-validation stage, a profiling
# stage (the pure-observer sentinel across off/sampling/PMU/both plus
# collapsed-stack validation), the full test suite with the metrics layer
# compiled out (CORRMINE_METRICS=OFF must stay a working configuration),
# and a ThreadSanitizer run over the concurrency-sensitive suites (the
# parallel mining engine, its pool, and the cached count provider). Run
# from the repository root:
#
#   scripts/verify.sh                  # everything
#   SKIP_TSAN=1 scripts/verify.sh      # skip the TSan stage
#   SKIP_METRICS_OFF=1 scripts/verify.sh  # skip the metrics-off stage
#   SKIP_STATSDIFF=1 scripts/verify.sh    # skip the statsdiff/trace stages
#   SKIP_PROFILE=1 scripts/verify.sh      # skip the profiling stage (the
#                                         # pure-observer sentinel plus
#                                         # collapsed-stack validation)
#   SKIP_BENCH=1 scripts/verify.sh        # skip the bench stages (kernel
#                                         # throughput + scheduler and
#                                         # incremental gates)
#   SKIP_INCREMENTAL=1 scripts/verify.sh  # skip the incremental repair stage
#   SKIP_OUTOFCORE=1 scripts/verify.sh    # skip the out-of-core stage
#                                         # (spill-partition mining + the
#                                         # memory-budget bench gate)
#
# Test slices by ctest label (tier-1 build):
#   (cd build && ctest -L unit)          # fast unit suites
#   (cd build && ctest -L differential)  # cross-implementation agreement
#   (cd build && ctest -L golden)        # paper-table golden snapshots
#   (cd build && ctest -L sharded)       # K-invariance / sharded core
#   (cd build && ctest -L metrics)       # observability layer
#   (cd build && ctest -L trace)         # tracing + trace validation
#   (cd build && ctest -L incremental)   # border repair / snapshots
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

echo "== sharded slice: K-invariance suites =="
(cd build && ctest --output-on-failure -L sharded)

if [[ "${SKIP_STATSDIFF:-0}" != "1" ]]; then
  echo "== statsdiff sentinel: threads x shards stats matrix =="
  # Every configuration's stats must diff clean against the first one:
  # the deterministic section exactly, plus the schedule-independent
  # counter families. statsdiff exits nonzero on any drift.
  SDIR=build/statsdiff-matrix
  rm -rf "$SDIR" && mkdir -p "$SDIR"
  build/tools/corrmine_cli generate quest --baskets 2000 \
    --out "$SDIR/fixture.txt" >/dev/null
  baseline=""
  for threads in 1 8; do
    for shards in 1 2 4 7; do
      stats="$SDIR/stats_t${threads}_s${shards}.json"
      build/tools/corrmine_cli mine "$SDIR/fixture.txt" \
        --support-count 100 --cell-fraction 0.26 --max-level 3 \
        --threads "$threads" --shards "$shards" \
        --stats-json "$stats" >/dev/null
      if [[ -z "$baseline" ]]; then
        baseline="$stats"
      else
        build/tools/statsdiff "$baseline" "$stats" \
          --counters miner.,count_provider.
      fi
    done
  done

  echo "== kernel sentinel: forced-scalar vs dispatched counting =="
  # A SIMD kernel may only change throughput, never an answer: the
  # deterministic section and the kernel.* logical-word counters must be
  # byte-identical between a forced-scalar run and whatever the CPU
  # dispatcher picked. (kernel.* counters are shard-dependent, so this
  # stage pins --shards and stays out of the matrix above.)
  build/tools/corrmine_cli mine "$SDIR/fixture.txt" \
    --support-count 100 --cell-fraction 0.26 --max-level 3 \
    --threads 8 --shards 4 --kernel scalar \
    --stats-json "$SDIR/stats_kernel_scalar.json" >/dev/null
  build/tools/corrmine_cli mine "$SDIR/fixture.txt" \
    --support-count 100 --cell-fraction 0.26 --max-level 3 \
    --threads 8 --shards 4 \
    --stats-json "$SDIR/stats_kernel_auto.json" >/dev/null
  build/tools/statsdiff "$SDIR/stats_kernel_scalar.json" \
    "$SDIR/stats_kernel_auto.json" \
    --counters miner.,count_provider.,kernel.

  echo "== kernel sentinel: compressed counting columns =="
  # Same invariance for the hybrid-container kernels: the compressed
  # provider routes array/dense/run intersections through the same dispatch
  # table, so forced-scalar vs dispatched must agree on the deterministic
  # section and the kernel.* logical-element counters. And the compressed
  # provider itself must answer byte-identically to the bitmap provider
  # (deterministic section only — kernel.* families differ across
  # physically different index layouts).
  build/tools/corrmine_cli mine "$SDIR/fixture.txt" \
    --support-count 100 --cell-fraction 0.26 --max-level 3 \
    --threads 8 --shards 4 --provider compressed --kernel scalar \
    --stats-json "$SDIR/stats_column_scalar.json" >/dev/null
  build/tools/corrmine_cli mine "$SDIR/fixture.txt" \
    --support-count 100 --cell-fraction 0.26 --max-level 3 \
    --threads 8 --shards 4 --provider compressed \
    --stats-json "$SDIR/stats_column_auto.json" >/dev/null
  build/tools/statsdiff "$SDIR/stats_column_scalar.json" \
    "$SDIR/stats_column_auto.json" \
    --counters miner.,count_provider.,kernel.
  build/tools/statsdiff "$SDIR/stats_kernel_auto.json" \
    "$SDIR/stats_column_auto.json" \
    --counters miner.,count_provider.

  echo "== trace stage: record + validate a Chrome trace =="
  build/tools/corrmine_cli mine "$SDIR/fixture.txt" \
    --support-count 100 --cell-fraction 0.26 --max-level 3 \
    --threads 8 --shards 4 --trace-out "$SDIR/run.trace.json" >/dev/null
  build/tools/statsdiff --validate-trace "$SDIR/run.trace.json"
fi

if [[ "${SKIP_PROFILE:-0}" != "1" ]]; then
  echo "== profile stage: pure-observer sentinel + collapsed stacks =="
  # The profiler's acceptance contract (DESIGN.md §13): turning on either
  # collector — SIGPROF sampling (--profile-out), the PMU phase counters
  # (--pmu), or both at once — must leave the deterministic stats section
  # and the schedule-independent counter families byte-identical to an
  # unprofiled run. statsdiff pins that; the validators then check the
  # non-deterministic artifacts structurally: the stats "profile" section,
  # the collapsed-stack file (flamegraph.pl input), and a Chrome trace
  # recorded WITH sampling folded in. On machines where perf_event_open is
  # denied the --pmu runs exercise the degradation path instead — the
  # sentinel holds either way, which is exactly the point.
  PDIR=build/profile-out
  rm -rf "$PDIR" && mkdir -p "$PDIR"
  PFLAGS=(--support-count 100 --cell-fraction 0.26 --max-level 3
          --threads 8 --shards 4)
  build/tools/corrmine_cli generate quest --baskets 2000 \
    --out "$PDIR/fixture.txt" >/dev/null
  build/tools/corrmine_cli mine "$PDIR/fixture.txt" "${PFLAGS[@]}" \
    --stats-json "$PDIR/stats_off.json" >/dev/null
  build/tools/corrmine_cli mine "$PDIR/fixture.txt" "${PFLAGS[@]}" \
    --profile-out "$PDIR/sampling.folded" \
    --stats-json "$PDIR/stats_sampling.json" >/dev/null 2>/dev/null
  build/tools/corrmine_cli mine "$PDIR/fixture.txt" "${PFLAGS[@]}" \
    --pmu \
    --stats-json "$PDIR/stats_pmu.json" >/dev/null 2>/dev/null
  build/tools/corrmine_cli mine "$PDIR/fixture.txt" "${PFLAGS[@]}" \
    --pmu --profile-out "$PDIR/both.folded" \
    --trace-out "$PDIR/profiled.trace.json" \
    --stats-json "$PDIR/stats_both.json" >/dev/null 2>/dev/null
  for mode in sampling pmu both; do
    build/tools/statsdiff "$PDIR/stats_off.json" \
      "$PDIR/stats_${mode}.json" --counters miner.,count_provider.
  done
  build/tools/statsdiff --validate-profile "$PDIR/stats_off.json"
  build/tools/statsdiff --validate-profile "$PDIR/stats_both.json"
  build/tools/statsdiff --validate-collapsed "$PDIR/sampling.folded"
  build/tools/statsdiff --validate-collapsed "$PDIR/both.folded"
  build/tools/statsdiff --validate-trace "$PDIR/profiled.trace.json"
fi

if [[ "${SKIP_INCREMENTAL:-0}" != "1" ]]; then
  echo "== incremental slice: border repair suites =="
  (cd build && ctest --output-on-failure -L incremental)

  echo "== incremental statsdiff: repair path vs from-scratch =="
  # The CLI loop end to end: snapshot the base mine, append a delta chunk
  # through ingest, then resume-repair — the deterministic stats section
  # and the schedule-independent counter families must diff clean against
  # a from-scratch mine of the grown file. This also pins that tracing and
  # repair metrics stay out of the deterministic section on the repair
  # path.
  IDIR=build/incremental-out
  rm -rf "$IDIR" && mkdir -p "$IDIR"
  IFLAGS=(--support-count 100 --cell-fraction 0.26 --max-level 3)
  build/tools/corrmine_cli generate quest --baskets 2000 \
    --out "$IDIR/work.txt" >/dev/null
  build/tools/corrmine_cli generate quest --baskets 100 --seed 4711 \
    --out "$IDIR/delta.txt" >/dev/null
  build/tools/corrmine_cli mine "$IDIR/work.txt" "${IFLAGS[@]}" \
    --border-out "$IDIR/base.cbs" >/dev/null
  build/tools/corrmine_cli ingest "$IDIR/work.txt" \
    --append "$IDIR/delta.txt" >/dev/null
  build/tools/corrmine_cli mine "$IDIR/work.txt" "${IFLAGS[@]}" \
    --stats-json "$IDIR/scratch.json" >/dev/null
  build/tools/corrmine_cli mine "$IDIR/work.txt" \
    --resume-from "$IDIR/base.cbs" \
    --stats-json "$IDIR/repair.json" >/dev/null 2>/dev/null
  build/tools/statsdiff "$IDIR/scratch.json" "$IDIR/repair.json" \
    --counters miner.,count_provider.

  echo "== incremental trace: record + validate a repair trace =="
  build/tools/corrmine_cli mine "$IDIR/work.txt" \
    --resume-from "$IDIR/base.cbs" \
    --trace-out "$IDIR/repair.trace.json" >/dev/null 2>/dev/null
  build/tools/statsdiff --validate-trace "$IDIR/repair.trace.json"
fi

if [[ "${SKIP_OUTOFCORE:-0}" != "1" ]]; then
  echo "== out-of-core slice: spill-partition suites =="
  (cd build && ctest --output-on-failure -R '^(outofcore_test|counting_column_test)$')

  echo "== out-of-core differential: spill mining vs in-memory =="
  # The §12 exactness contract end to end through the CLI: mining with
  # --out-of-core under a partition-forcing budget must produce the rule
  # file byte-for-byte and a clean deterministic-stats diff against the
  # in-memory mine, at 1 and 8 threads. Counter families are deliberately
  # NOT compared: the out-of-core pipeline runs extra per-partition mines
  # and streaming count passes by design, so only the deterministic
  # section (rules, levels, dataset identity) is pinned.
  ODIR=build/outofcore-out
  rm -rf "$ODIR" && mkdir -p "$ODIR"
  OFLAGS=(--support-count 3000 --cell-fraction 0.26 --max-level 3)
  build/tools/corrmine_cli generate quest --baskets 60000 \
    --format binary --out "$ODIR/fixture.cmb" >/dev/null
  build/tools/corrmine_cli mine "$ODIR/fixture.cmb" "${OFLAGS[@]}" \
    --out "$ODIR/rules_mem.txt" \
    --stats-json "$ODIR/stats_mem.json" >/dev/null
  for threads in 1 8; do
    build/tools/corrmine_cli mine "$ODIR/fixture.cmb" "${OFLAGS[@]}" \
      --out-of-core --memory-budget $((8 * 1024 * 1024)) \
      --threads "$threads" \
      --out "$ODIR/rules_ooc_t${threads}.txt" \
      --stats-json "$ODIR/stats_ooc_t${threads}.json" >/dev/null
    cmp "$ODIR/rules_mem.txt" "$ODIR/rules_ooc_t${threads}.txt"
    build/tools/statsdiff "$ODIR/stats_mem.json" \
      "$ODIR/stats_ooc_t${threads}.json"
  done

  echo "== out-of-core sentinel: serial vs parallel admission =="
  # The admission controller must be invisible in the answer AND in the
  # deterministic pipeline stats. Two probes:
  #
  # 1. threads=1 (admitted=1 by construction, identical partitioning) vs
  #    threads=8 (default admission): the schedule-independent out-of-core
  #    counters — partition count, candidate union, memo traffic — must
  #    match exactly. The outofcore.admitted_partitions gauge legitimately
  #    differs, so the prefixes name the invariant families rather than
  #    "outofcore.".
  build/tools/statsdiff "$ODIR/stats_ooc_t1.json" \
    "$ODIR/stats_ooc_t8.json" \
    --counters outofcore.partitions,outofcore.candidate_queries,outofcore.memo
  #
  # 2. The forced-serial knob: --partition-budget equal to the memory
  #    budget degrades an 8-thread run to admitted=1. Partition sizing
  #    changes with the knob (it is the same budget that closes
  #    partitions), so only the rule bytes and the deterministic section
  #    are compared — which is the point: the answer must not move.
  build/tools/corrmine_cli mine "$ODIR/fixture.cmb" "${OFLAGS[@]}" \
    --out-of-core --memory-budget $((8 * 1024 * 1024)) \
    --partition-budget $((8 * 1024 * 1024)) --threads 8 \
    --out "$ODIR/rules_ooc_serial.txt" \
    --stats-json "$ODIR/stats_ooc_serial.json" >/dev/null
  cmp "$ODIR/rules_mem.txt" "$ODIR/rules_ooc_serial.txt"
  build/tools/statsdiff "$ODIR/stats_mem.json" "$ODIR/stats_ooc_serial.json"
fi

if [[ "${SKIP_BENCH:-0}" != "1" ]]; then
  echo "== bench stage: kernel throughput =="
  # The SIMD layer's reason to exist: bench_kernels CHECK-fails if any
  # kernel's counts diverge, and its table shows the measured speedups.
  cmake --build build -j --target bench_kernels >/dev/null
  build/bench/bench_kernels

  echo "== bench stage: scheduler scaling gate =="
  # Parallel-scaling regression gate (DESIGN.md §10): bench_parallel and
  # bench_sharded CHECK determinism internally; benchgate then enforces the
  # scaling contract — 3.0x at 8 threads on >= 8 usable cores, scaled to
  # the cores this machine actually grants (cgroup/affinity-aware), and
  # <= 10% sharding overhead while K fits the core count — and refreshes
  # BENCH_scheduler.json.
  cmake --build build -j --target bench_parallel bench_sharded benchgate \
    >/dev/null
  BDIR=build/bench-out
  mkdir -p "$BDIR"
  build/bench/bench_parallel | tee "$BDIR/parallel.txt" | grep -v BENCH_
  build/bench/bench_sharded | tee "$BDIR/sharded.txt" | grep -v BENCH_
  build/tools/benchgate --out BENCH_scheduler.json \
    "$BDIR/parallel.txt" "$BDIR/sharded.txt"

  if [[ "${SKIP_INCREMENTAL:-0}" != "1" ]]; then
    echo "== bench stage: incremental repair gate =="
    # Border repair vs. full re-mine (DESIGN.md §11): bench_incremental
    # CHECKs byte-equality of the two results internally; benchgate then
    # enforces the repair-speedup floor on <= 1% deltas (scaled to this
    # machine's usable cores) and refreshes BENCH_incremental.json.
    cmake --build build -j --target bench_incremental benchgate >/dev/null
    build/bench/bench_incremental | tee "$BDIR/incremental.txt" \
      | grep -v BENCH_
    build/tools/benchgate --out BENCH_incremental.json \
      "$BDIR/incremental.txt"
  fi

  if [[ "${SKIP_OUTOFCORE:-0}" != "1" ]]; then
    echo "== bench stage: out-of-core memory gate =="
    # The §12 budget contract: bench_outofcore streams a dataset >= 10x
    # its --memory-budget through the spill pipeline (CHECKing exactness
    # against an in-memory mine AND against a forced-serial run
    # internally); benchgate then enforces peak RSS <= 1.1x budget and
    # the v2 spill-compression ratio <= 0.7x raw — both core-independent
    # — plus, on machines with >= 4 usable cores, the pipelined pass-1
    # speedup floor (report-only below) — and refreshes
    # BENCH_outofcore.json.
    cmake --build build -j --target bench_outofcore benchgate >/dev/null
    build/bench/bench_outofcore | tee "$BDIR/outofcore.txt" \
      | grep -v BENCH_
    build/tools/benchgate --out BENCH_outofcore.json \
      "$BDIR/outofcore.txt"
  fi
fi

if [[ "${SKIP_METRICS_OFF:-0}" != "1" ]]; then
  echo "== metrics compiled out: build + ctest =="
  cmake -B build-nometrics -S . -DCORRMINE_METRICS=OFF >/dev/null
  cmake --build build-nometrics -j >/dev/null
  (cd build-nometrics && ctest --output-on-failure -j)
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== TSan: parallel engine suites =="
  cmake -B build-tsan -S . -DCORRMINE_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j \
    --target thread_pool_test miner_test batch_tables_test \
    count_provider_cache_test sharded_database_test trace_test \
    profiler_test kernel_differential_test scheduler_determinism_test \
    incremental_differential_test border_state_test \
    differential_miners_test counting_column_test outofcore_test >/dev/null
  (cd build-tsan &&
   ctest --output-on-failure \
     -R '^(thread_pool_test|miner_test|batch_tables_test|count_provider_cache_test|sharded_database_test|trace_test|profiler_test|kernel_differential_test|scheduler_determinism_test|incremental_differential_test|border_state_test|differential_miners_test|counting_column_test|outofcore_test)$')
fi

echo "verify: OK"
