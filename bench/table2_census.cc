// Regenerates Table 2 of the paper: the chi-squared/interest analysis of
// all 45 census item pairs — chi-squared value, significance at the 95%
// level, and the four cell interests I(ab), I(!a b), I(a !b), I(!a !b),
// with the most extreme interest of significant pairs marked '*'.

#include "common/logging.h"

#include "bench_metrics.h"
#include <cmath>
#include <iostream>
#include <string>

#include "core/chi_squared_test.h"
#include "core/interest.h"
#include "datagen/census_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

int main() {
  using namespace corrmine;
  using datagen::kCensusNumItems;

  auto db = datagen::GenerateCensusData();
  CORRMINE_CHECK(db.ok()) << db.status().ToString();
  BitmapCountProvider provider(*db);

  std::cout << "== Table 2: chi-squared / interest over all census pairs "
               "==\n"
            << "n = " << db->num_baskets()
            << "; significance cutoff 3.84 (95%, 1 dof); chi2 marked with "
               "'!' when significant;\n"
            << "interest cells marked '*' for the most extreme value of a "
               "significant pair.\n\n";

  io::TablePrinter table({"a", "b", "chi2", "sig", "I(ab)", "I(!ab)",
                          "I(a!b)", "I(!a!b)"});
  int significant_pairs = 0;
  for (int a = 0; a < kCensusNumItems; ++a) {
    for (int b = a + 1; b < kCensusNumItems; ++b) {
      auto ct = ContingencyTable::Build(
          provider, Itemset{static_cast<ItemId>(a), static_cast<ItemId>(b)});
      CORRMINE_CHECK(ct.ok());
      ChiSquaredResult chi2 = ComputeChiSquared(*ct);
      bool significant = chi2.SignificantAt(0.95);
      if (significant) ++significant_pairs;
      auto cells = ComputeCellInterests(*ct);
      // Cell masks: bit0 = a present, bit1 = b present.
      double interests[4] = {cells[0b11].interest, cells[0b10].interest,
                             cells[0b01].interest, cells[0b00].interest};
      int extreme = 0;
      for (int c = 1; c < 4; ++c) {
        if (std::fabs(interests[c] - 1.0) >
            std::fabs(interests[extreme] - 1.0)) {
          extreme = c;
        }
      }
      std::vector<std::string> row = {"i" + std::to_string(a),
                                      "i" + std::to_string(b),
                                      io::FormatDouble(chi2.statistic, 2) +
                                          (significant ? "!" : "")};
      row.push_back(significant ? "yes" : "no");
      for (int c = 0; c < 4; ++c) {
        std::string cell = io::FormatDouble(interests[c], 3);
        if (significant && c == extreme) cell += "*";
        row.push_back(cell);
      }
      table.AddRow(row);
    }
  }
  table.Print(std::cout);

  std::cout << "\nSignificant pairs: " << significant_pairs
            << " / 45 (paper: 38 / 45 bold chi2 values in Table 2)\n";
  std::cout << "Paper's notable uncorrelated pairs {i1,i4} and {i1,i5} "
               "should be among the non-significant rows above.\n";
  corrmine::bench::EmitMetricsLine("table2_census");
  return 0;
}
