// Head-to-head of the frequent-itemset miners this library ships —
// Apriori, PCY, Partition, Toivonen sampling, Eclat, FP-growth — on the
// same Quest data, verifying identical outputs while timing each, plus the
// batch per-level table builder against per-candidate builds.

#include <chrono>

#include "bench_metrics.h"
#include <iostream>
#include <map>
#include <string>

#include "common/logging.h"
#include "core/batch_tables.h"
#include "core/chi_squared_test.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "mining/apriori.h"
#include "mining/eclat.h"
#include "mining/fp_growth.h"
#include "mining/maximal.h"
#include "mining/partition.h"
#include "mining/pcy.h"
#include "mining/sampling.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::map<Itemset, uint64_t> ToMap(const std::vector<FrequentItemset>& sets) {
  std::map<Itemset, uint64_t> m;
  for (const FrequentItemset& f : sets) m.emplace(f.itemset, f.count);
  return m;
}

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;

  datagen::QuestOptions quest;
  quest.num_transactions = 50000;
  quest.num_items = 500;
  quest.avg_transaction_size = 12.0;
  quest.num_patterns = 120;
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok());
  const double kSupport = 0.02;
  std::cout << "== Frequent-itemset baselines on quest data ==\n"
            << "n = " << db->num_baskets() << ", items = " << db->num_items()
            << ", min support " << kSupport * 100 << "%\n\n";

  io::TablePrinter table({"algorithm", "seconds", "frequent sets",
                          "matches apriori"});
  std::map<Itemset, uint64_t> reference;

  BitmapCountProvider provider(*db);
  {
    auto start = std::chrono::steady_clock::now();
    AprioriOptions options;
    options.min_support_fraction = kSupport;
    auto result = MineFrequentItemsets(provider, db->num_items(), options);
    CORRMINE_CHECK(result.ok());
    reference = ToMap(*result);
    table.AddRow({"apriori (bitmap counts)",
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->size()), "-"});
  }
  {
    auto start = std::chrono::steady_clock::now();
    PcyOptions options;
    options.min_support_fraction = kSupport;
    auto result = MineFrequentItemsetsPcy(*db, options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"PCY", io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->size()),
                  ToMap(*result) == reference ? "yes" : "NO"});
  }
  {
    auto start = std::chrono::steady_clock::now();
    PartitionOptions options;
    options.min_support_fraction = kSupport;
    options.num_partitions = 8;
    auto result = MineFrequentItemsetsPartition(*db, options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"partition (8 chunks)",
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->size()),
                  ToMap(*result) == reference ? "yes" : "NO"});
  }
  {
    auto start = std::chrono::steady_clock::now();
    SamplingOptions options;
    options.min_support_fraction = kSupport;
    options.sample_fraction = 0.1;
    auto result = MineFrequentItemsetsSampling(*db, options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"sampling (10% sample)",
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->size()),
                  ToMap(*result) == reference ? "yes" : "NO"});
  }
  {
    auto start = std::chrono::steady_clock::now();
    EclatOptions options;
    options.min_support_fraction = kSupport;
    auto result = MineFrequentItemsetsEclat(*db, options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"eclat", io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->size()),
                  ToMap(*result) == reference ? "yes" : "NO"});
  }
  {
    auto start = std::chrono::steady_clock::now();
    FpGrowthOptions options;
    options.min_support_fraction = kSupport;
    auto result = MineFrequentItemsetsFpGrowth(*db, options);
    CORRMINE_CHECK(result.ok());
    auto as_map = ToMap(*result);
    table.AddRow({"fp-growth", io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->size()),
                  as_map == reference ? "yes" : "NO"});

    auto maximal = MaximalFrequentItemsets(*result);
    auto closed = ClosedFrequentItemsets(*result);
    table.AddRow({"  (maximal / closed summary)", "-",
                  std::to_string(maximal.size()) + " / " +
                      std::to_string(closed.size()),
                  "-"});
  }
  table.Print(std::cout);

  // Batch per-level table construction vs per-candidate builds.
  std::vector<Itemset> candidates;
  for (const auto& [itemset, count] : reference) {
    if (itemset.size() == 2) candidates.push_back(itemset);
  }
  std::cout << "\n== Contingency tables for " << candidates.size()
            << " pairs: batch scan vs per-candidate ==\n";
  {
    auto start = std::chrono::steady_clock::now();
    auto batch = BuildSparseTablesBatch(*db, candidates);
    CORRMINE_CHECK(batch.ok());
    std::cout << "batch one-pass build : "
              << io::FormatDouble(SecondsSince(start), 3) << " s\n";
  }
  {
    auto start = std::chrono::steady_clock::now();
    for (const Itemset& s : candidates) {
      auto single = ContingencyTable::Build(provider, s);
      CORRMINE_CHECK(single.ok());
    }
    std::cout << "per-candidate bitmap : "
              << io::FormatDouble(SecondsSince(start), 3) << " s\n";
  }
  corrmine::bench::EmitMetricsLine("bench_baselines");
  return 0;
}
