// Throughput of the counting kernels (DESIGN.md §9), two ways:
//
//  1. Microbenchmark: fused AND+popcount (and the k=4 multi-way AND) over
//     L2-resident word buffers, once per runnable kernel. Scored in
//     words/sec against the scalar kernel — the acceptance bar for the
//     SIMD dispatch layer is >= 2x best-vs-scalar here.
//  2. End to end: the full chi-squared mine over a quest workload, forced
//     onto each kernel in turn via SetActiveKernel. Verdicts must be
//     byte-identical across kernels (CHECK-enforced on the deterministic
//     stats line); only the wall clock may move.
//
// Emits one "BENCH_JSON " line (the BENCH_kernels.json seed), the human
// table, and the standard BENCH_METRICS tail.

#include <chrono>

#include "bench_metrics.h"
#include <cstdint>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "io/stats_json.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "itemset/kernels.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double SafeRatio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

/// 16384 words = 128 KiB per operand: big enough to stream, small enough
/// that two operands stay L2-resident — the regime the blocked executor's
/// tiles put the kernels in.
constexpr size_t kWords = 16384;
constexpr int kCallsPerRep = 64;
constexpr int kReps = 5;

std::vector<uint64_t> RandomWords(size_t n, std::mt19937_64* rng) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) w = (*rng)();
  return words;
}

struct MicroResult {
  std::string name;
  double and_words_per_sec = 0;
  double multi_words_per_sec = 0;
};

struct MineResult {
  std::string name;
  double seconds = 0;
};

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;

  // --- Microbenchmark: AND+popcount and 4-way multi-AND word throughput.
  std::mt19937_64 rng(1997);
  std::vector<uint64_t> a = RandomWords(kWords, &rng);
  std::vector<uint64_t> b = RandomWords(kWords, &rng);
  std::vector<uint64_t> c = RandomWords(kWords, &rng);
  std::vector<uint64_t> d = RandomWords(kWords, &rng);
  const uint64_t* multi_ops[4] = {a.data(), b.data(), c.data(), d.data()};

  std::vector<MicroResult> micro;
  uint64_t and_checksum = 0, multi_checksum = 0;
  for (const CountingKernels* kernels : AvailableKernels()) {
    MicroResult r;
    r.name = kernels->name;
    // Each rep makes kCallsPerRep full passes; best-of-kReps minimum is
    // the jitter-robust estimator for a deterministic workload.
    uint64_t sink = 0;
    double and_seconds = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int call = 0; call < kCallsPerRep; ++call) {
        sink += kernels->and_count(a.data(), b.data(), kWords);
      }
      double seconds = SecondsSince(start);
      if (rep == 0 || seconds < and_seconds) and_seconds = seconds;
    }
    r.and_words_per_sec =
        SafeRatio(static_cast<double>(kWords) * kCallsPerRep, and_seconds);

    uint64_t multi_sink = 0;
    double multi_seconds = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (int call = 0; call < kCallsPerRep; ++call) {
        multi_sink += kernels->multi_and_count(multi_ops, 4, kWords);
      }
      double seconds = SecondsSince(start);
      if (rep == 0 || seconds < multi_seconds) multi_seconds = seconds;
    }
    r.multi_words_per_sec =
        SafeRatio(static_cast<double>(kWords) * kCallsPerRep, multi_seconds);

    // Cross-kernel agreement doubles as the dead-code-elimination guard:
    // the timed results feed a CHECK, so the loops cannot be optimized out.
    if (micro.empty()) {
      and_checksum = sink;
      multi_checksum = multi_sink;
    } else {
      CORRMINE_CHECK(sink == and_checksum)
          << kernels->name << " and_count diverged from scalar";
      CORRMINE_CHECK(multi_sink == multi_checksum)
          << kernels->name << " multi_and_count diverged from scalar";
    }
    micro.push_back(r);
  }
  const double scalar_and = micro.front().and_words_per_sec;
  const double scalar_multi = micro.front().multi_words_per_sec;

  // --- End to end: the full mine, forced onto each kernel.
  datagen::QuestOptions quest;
  quest.num_transactions = 8000;
  quest.num_items = 120;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 40;
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok());
  BitmapCountProvider provider(*db);

  MinerOptions options;
  options.support.min_count = 3;
  options.support.cell_fraction = 0.26;
  options.max_level = 4;

  std::vector<MineResult> mines;
  std::string deterministic_line;
  for (const CountingKernels* kernels : AvailableKernels()) {
    CORRMINE_CHECK(SetActiveKernel(kernels->name).ok());
    MineResult r;
    r.name = kernels->name;
    std::string line;
    constexpr int kMineReps = 3;
    for (int rep = 0; rep < kMineReps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      auto result = MineCorrelations(provider, db->num_items(), options);
      double seconds = SecondsSince(start);
      CORRMINE_CHECK(result.ok());
      if (rep == 0 || seconds < r.seconds) r.seconds = seconds;
      line = RenderDeterministicStats(*result, nullptr);
    }
    if (deterministic_line.empty()) {
      deterministic_line = line;
    } else {
      CORRMINE_CHECK(line == deterministic_line)
          << "kernel " << kernels->name
          << " changed the deterministic stats line";
    }
    mines.push_back(r);
  }
  CORRMINE_CHECK(SetActiveKernel("auto").ok());
  const double scalar_mine = mines.front().seconds;

  double best_and_speedup = 1.0;
  for (const MicroResult& r : micro) {
    best_and_speedup = std::max(
        best_and_speedup, SafeRatio(r.and_words_per_sec, scalar_and));
  }

  // Doubles go through FormatJsonNumber: word rates seeded as "2.1e+08"
  // stop round-tripping the moment anyone diffs the trajectory file.
  const auto num = [](double v) { return bench::FormatJsonNumber(v); };
  std::ostringstream json;
  json << "\"active\":\"" << ActiveKernelName() << "\""
       << ",\"words_per_operand\":" << kWords
       << ",\"best_and_speedup\":" << num(best_and_speedup)
       << ",\"kernels\":[";
  for (size_t i = 0; i < micro.size(); ++i) {
    if (i > 0) json << ',';
    json << "{\"name\":\"" << micro[i].name << "\""
         << ",\"and_words_per_sec\":" << num(micro[i].and_words_per_sec)
         << ",\"and_speedup\":"
         << num(SafeRatio(micro[i].and_words_per_sec, scalar_and))
         << ",\"multi4_words_per_sec\":" << num(micro[i].multi_words_per_sec)
         << ",\"multi4_speedup\":"
         << num(SafeRatio(micro[i].multi_words_per_sec, scalar_multi))
         << ",\"mine_seconds\":" << num(mines[i].seconds)
         << ",\"mine_speedup\":"
         << num(SafeRatio(scalar_mine, mines[i].seconds)) << '}';
  }
  json << "]";
  bench::EmitBenchJsonLine("bench_kernels", json.str());

  io::TablePrinter table({"kernel", "AND Gwords/s", "x scalar",
                          "4-AND Gwords/s", "x scalar", "mine s",
                          "mine x"});
  for (size_t i = 0; i < micro.size(); ++i) {
    table.AddRow(
        {micro[i].name,
         io::FormatDouble(micro[i].and_words_per_sec / 1e9, 2),
         io::FormatDouble(SafeRatio(micro[i].and_words_per_sec, scalar_and),
                          2),
         io::FormatDouble(micro[i].multi_words_per_sec / 1e9, 2),
         io::FormatDouble(
             SafeRatio(micro[i].multi_words_per_sec, scalar_multi), 2),
         io::FormatDouble(mines[i].seconds, 3),
         io::FormatDouble(SafeRatio(scalar_mine, mines[i].seconds), 2)});
  }
  std::cout << "== Counting-kernel throughput (AND+popcount, "
            << kWords << "-word operands) ==\n\n";
  table.Print(std::cout);
  std::cout << "\nmined verdicts byte-identical across all "
            << micro.size() << " kernels.\n";
  bench::EmitMetricsLine("bench_kernels");
  return 0;
}
