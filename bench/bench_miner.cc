// End-to-end miner timings and ablations (plain harness, not
// google-benchmark: each configuration is one full mining run).
//
//  - census/quest end-to-end wall clock (the paper quotes 3.6 s and 2349 s
//    on 1996 hardware for these; we report ours for the record);
//  - support pruning on/off, p-level sweep, alpha sweep;
//  - level-1 pruning mode ablation (Figure 1 strict vs feasibility bound);
//  - Apriori baseline cost on the same data.

#include "common/logging.h"

#include "bench_metrics.h"
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/chi_squared_miner.h"
#include "datagen/census_generator.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "mining/apriori.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  double seconds = 0.0;
  uint64_t candidates = 0;
  uint64_t significant = 0;
  int levels = 0;
};

RunResult RunMiner(const CountProvider& provider, ItemId num_items,
                   const MinerOptions& options) {
  auto start = std::chrono::steady_clock::now();
  auto result = MineCorrelations(provider, num_items, options);
  CORRMINE_CHECK(result.ok()) << result.status().ToString();
  RunResult out;
  out.seconds = SecondsSince(start);
  for (const LevelStats& level : result->levels) {
    out.candidates += level.candidates;
    out.significant += level.significant;
  }
  out.levels = static_cast<int>(result->levels.size());
  return out;
}

void Report(io::TablePrinter* table, const std::string& name,
            const RunResult& run) {
  table->AddRow({name, io::FormatDouble(run.seconds, 3),
                 std::to_string(run.candidates),
                 std::to_string(run.significant),
                 std::to_string(run.levels)});
}

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;

  std::printf("== End-to-end mining timings ==\n");
  std::printf(
      "(paper, 1996 hardware: census 3.6 s on a 90 MHz Pentium; Quest\n"
      " synthetic 2349 s on a 166 MHz Pentium Pro)\n\n");

  io::TablePrinter table(
      {"configuration", "seconds", "cand_total", "sig_total", "levels"});

  // --- Census, paper settings (s = 1%, p just over 25%, 95%). ---
  {
    auto db = datagen::GenerateCensusData();
    CORRMINE_CHECK(db.ok());
    BitmapCountProvider provider(*db);
    MinerOptions options;
    options.support.min_count = static_cast<uint64_t>(
        0.01 * static_cast<double>(db->num_baskets()));
    options.support.cell_fraction = 0.25 + 1e-9;
    Report(&table, "census n=30370 k=10",
           RunMiner(provider, db->num_items(), options));
  }

  // --- Quest, Table 5 calibration; then ablations on the same data. ---
  datagen::QuestOptions quest;
  quest.num_patterns = 140;
  auto quest_db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(quest_db.ok());
  BitmapCountProvider provider(*quest_db);
  const uint64_t s5 = static_cast<uint64_t>(
      0.05 * static_cast<double>(quest_db->num_baskets()));

  MinerOptions base;
  base.support.min_count = s5;
  base.support.cell_fraction = 0.25 + 1e-9;
  Report(&table, "quest n=99997 k=870 (table5 cfg)",
         RunMiner(provider, quest_db->num_items(), base));

  {
    MinerOptions options = base;
    options.level_one = LevelOnePruning::kFeasibilityBound;
    Report(&table, "quest level1=feasibility",
           RunMiner(provider, quest_db->num_items(), options));
  }
  {
    MinerOptions options = base;
    options.support.min_count = 1;  // Support pruning effectively off.
    options.max_level = 3;          // Keep the blow-up bounded.
    Report(&table, "quest support off (max level 3)",
           RunMiner(provider, quest_db->num_items(), options));
  }
  for (double fraction : {0.26, 0.51, 0.76}) {
    MinerOptions options = base;
    options.support.cell_fraction = fraction;
    Report(&table,
           "quest p=" + io::FormatDouble(fraction, 2),
           RunMiner(provider, quest_db->num_items(), options));
  }
  for (double alpha : {0.95, 0.99, 0.999}) {
    MinerOptions options = base;
    options.confidence_level = alpha;
    Report(&table,
           "quest alpha=" + io::FormatDouble(alpha, 3),
           RunMiner(provider, quest_db->num_items(), options));
  }

  // --- Apriori baseline on the same Quest data. ---
  {
    auto start = std::chrono::steady_clock::now();
    AprioriOptions options;
    options.min_support_fraction = 0.05;
    auto frequent =
        MineFrequentItemsets(provider, quest_db->num_items(), options);
    CORRMINE_CHECK(frequent.ok());
    table.AddRow({"quest apriori s=5% (baseline)",
                  io::FormatDouble(SecondsSince(start), 3), "-",
                  std::to_string(frequent->size()), "-"});
  }

  table.Print(std::cout);
  corrmine::bench::EmitMetricsLine("bench_miner");
  return 0;
}
