// Ablation for the paper's Section 4 implementation choice: perfect hash
// tables (FKS static / dynamic) versus std::unordered_map for the NOTSIG
// and CAND membership tests driving candidate generation.

#include "common/logging.h"
#include <unordered_map>
#include <unordered_set>

#include <benchmark/benchmark.h>

#include "bench_metrics.h"

#include "hash/dynamic_perfect_hash.h"
#include "hash/fks_perfect_hash.h"
#include "hash/itemset_set.h"
#include "hash/universal_hash.h"

namespace corrmine::hash {
namespace {

std::vector<uint64_t> MakeKeys(size_t count) {
  std::vector<uint64_t> keys;
  keys.reserve(count);
  SplitMix64 rng(99);
  for (size_t i = 0; i < count; ++i) keys.push_back(rng.Next());
  return keys;
}

void BM_FksLookupHit(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  auto table = FksPerfectHash::Build(keys);
  CORRMINE_CHECK(table.ok());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Find(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_FksLookupHit)->Arg(1000)->Arg(100000);

void BM_DynamicPerfectLookupHit(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  DynamicPerfectHash table;
  for (size_t i = 0; i < keys.size(); ++i) table.Insert(keys[i], i);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_DynamicPerfectLookupHit)->Arg(1000)->Arg(100000);

void BM_UnorderedMapLookupHit(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  std::unordered_map<uint64_t, uint64_t> table;
  for (size_t i = 0; i < keys.size(); ++i) table.emplace(keys[i], i);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_UnorderedMapLookupHit)->Arg(1000)->Arg(100000);

void BM_DynamicPerfectLookupMiss(benchmark::State& state) {
  auto keys = MakeKeys(100000);
  DynamicPerfectHash table;
  for (size_t i = 0; i < keys.size(); ++i) table.Insert(keys[i], i);
  uint64_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(probe++));
  }
}
BENCHMARK(BM_DynamicPerfectLookupMiss);

void BM_UnorderedMapLookupMiss(benchmark::State& state) {
  auto keys = MakeKeys(100000);
  std::unordered_map<uint64_t, uint64_t> table;
  for (size_t i = 0; i < keys.size(); ++i) table.emplace(keys[i], i);
  uint64_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(probe++));
  }
}
BENCHMARK(BM_UnorderedMapLookupMiss);

void BM_DynamicPerfectInsert(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    DynamicPerfectHash table;
    for (size_t i = 0; i < keys.size(); ++i) table.Insert(keys[i], i);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DynamicPerfectInsert)->Arg(1000)->Arg(30000);

void BM_UnorderedMapInsert(benchmark::State& state) {
  auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_map<uint64_t, uint64_t> table;
    for (size_t i = 0; i < keys.size(); ++i) table.emplace(keys[i], i);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnorderedMapInsert)->Arg(1000)->Arg(30000);

void BM_ItemsetPerfectSetContains(benchmark::State& state) {
  ItemsetPerfectSet set;
  std::vector<Itemset> itemsets;
  for (ItemId a = 0; a < 200; ++a) {
    for (ItemId b = a + 1; b < 200; ++b) {
      itemsets.push_back(Itemset{a, b});
    }
  }
  for (const Itemset& s : itemsets) set.Insert(s);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Contains(itemsets[i++ % itemsets.size()]));
  }
}
BENCHMARK(BM_ItemsetPerfectSetContains);

void BM_UnorderedItemsetSetContains(benchmark::State& state) {
  std::unordered_set<Itemset, ItemsetHasher> set;
  std::vector<Itemset> itemsets;
  for (ItemId a = 0; a < 200; ++a) {
    for (ItemId b = a + 1; b < 200; ++b) {
      itemsets.push_back(Itemset{a, b});
    }
  }
  set.insert(itemsets.begin(), itemsets.end());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.count(itemsets[i++ % itemsets.size()]));
  }
}
BENCHMARK(BM_UnorderedItemsetSetContains);

}  // namespace
}  // namespace corrmine::hash

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a
// BENCH_METRICS registry snapshot, like the harness-style benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  corrmine::bench::EmitMetricsLine("bench_hash");
  return 0;
}
