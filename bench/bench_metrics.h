#ifndef CORRMINE_BENCH_BENCH_METRICS_H_
#define CORRMINE_BENCH_BENCH_METRICS_H_

#include <cstdio>

#include "common/metrics.h"

namespace corrmine {
namespace bench {

/// Prints the global metrics registry as one machine-greppable line:
///   BENCH_METRICS {"bench":"<name>", ...registry snapshot...}
/// Every bench binary calls this at exit, so scripted sweeps can diff the
/// instrumentation (cache hits, candidates, pool activity) across runs
/// without parsing the human-readable tables. With CORRMINE_METRICS=OFF
/// the line still prints, with all-zero values.
inline void EmitMetricsLine(const char* bench_name) {
  // ToJson always renders "{\"metrics_compiled\":...}"; splice the bench
  // name in as the object's first key.
  std::string snapshot = MetricsRegistry::Global().ToJson();
  std::printf("BENCH_METRICS {\"bench\":\"%s\",%s\n", bench_name,
              snapshot.c_str() + 1);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace corrmine

#endif  // CORRMINE_BENCH_BENCH_METRICS_H_
