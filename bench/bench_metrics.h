#ifndef CORRMINE_BENCH_BENCH_METRICS_H_
#define CORRMINE_BENCH_BENCH_METRICS_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/metrics.h"

namespace corrmine {
namespace bench {

/// Formats one JSON number exactly. Integral values below 2^53 print as
/// plain integers — never scientific notation, which loses bytes the
/// moment a byte count or row count round-trips through a BENCH_*.json
/// seed ("3.35544e+07" was once 33554432). Fractional values use the
/// shortest decimal that parses back to the same double.
inline std::string FormatJsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0 /* 2^53 */) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Prints the global metrics registry as one machine-greppable line:
///   BENCH_METRICS {"bench":"<name>", ...registry snapshot...}
/// Every bench binary calls this at exit, so scripted sweeps can diff the
/// instrumentation (cache hits, candidates, pool activity) across runs
/// without parsing the human-readable tables. With CORRMINE_METRICS=OFF
/// the line still prints, with all-zero values.
inline void EmitMetricsLine(const char* bench_name) {
  // ToJson always renders "{\"metrics_compiled\":...}"; splice the bench
  // name in as the object's first key.
  std::string snapshot = MetricsRegistry::Global().ToJson();
  std::printf("BENCH_METRICS {\"bench\":\"%s\",%s\n", bench_name,
              snapshot.c_str() + 1);
  std::fflush(stdout);
}

/// Prints one bench-result JSON line in the shared envelope:
///   BENCH_JSON {"bench":"<name>",<fields>}
/// `fields` is the comma-joined interior of the object ("\"runs\":[...]"),
/// WITHOUT braces or a leading comma. Benches that seed BENCH_*.json
/// trajectory files route through here so the prefix, the envelope key and
/// the trailing blank line (which separates the line from the
/// human-readable table) stay consistent across binaries — statsdiff and
/// the sweep scripts grep for exactly this shape.
inline void EmitBenchJsonLine(const char* bench_name,
                              const std::string& fields) {
  std::printf("BENCH_JSON {\"bench\":\"%s\",%s}\n\n", bench_name,
              fields.c_str());
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace corrmine

#endif  // CORRMINE_BENCH_BENCH_METRICS_H_
