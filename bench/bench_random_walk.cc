// Compares the level-wise miner against the random-walk alternative the
// paper sketches in Sections 2.1 and 6: walks have no per-level barrier and
// support non-downward-closed pruning (high-chi2 filtering), at the cost of
// probabilistic coverage. Also exercises the datacube-backed walk the paper
// flags as future work.

#include <chrono>

#include "bench_metrics.h"
#include <iostream>
#include <string>

#include "common/logging.h"
#include "core/chi_squared_miner.h"
#include "core/random_walk_miner.h"
#include "cube/datacube.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;

  datagen::QuestOptions quest;
  quest.num_transactions = 20000;
  quest.num_items = 200;
  quest.avg_transaction_size = 12.0;
  quest.num_patterns = 40;
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok());
  BitmapCountProvider provider(*db);

  MinerOptions miner;
  miner.support.min_count = static_cast<uint64_t>(
      0.05 * static_cast<double>(db->num_baskets()));
  miner.support.cell_fraction = 0.25 + 1e-9;

  io::TablePrinter table({"strategy", "seconds", "minimal sets found"});

  size_t level_wise_found = 0;
  {
    auto start = std::chrono::steady_clock::now();
    auto result = MineCorrelations(provider, db->num_items(), miner);
    CORRMINE_CHECK(result.ok());
    level_wise_found = result->significant.size();
    table.AddRow({"level-wise (exact)",
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(level_wise_found)});
  }

  for (int walks : {100, 1000, 10000}) {
    RandomWalkOptions options;
    options.miner = miner;
    options.num_walks = walks;
    auto start = std::chrono::steady_clock::now();
    auto result =
        MineCorrelationsRandomWalk(provider, db->num_items(), options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"random walk x" + std::to_string(walks),
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->significant.size())});
  }

  // High-chi2 pruning — only expressible on the walk (not downward closed).
  {
    RandomWalkOptions options;
    options.miner = miner;
    options.num_walks = 10000;
    options.max_chi_squared = 500.0;
    auto start = std::chrono::steady_clock::now();
    auto result =
        MineCorrelationsRandomWalk(provider, db->num_items(), options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"random walk x10000, chi2<=500",
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->significant.size())});
  }

  // Datacube-backed walk: counts served from materialized cube cells.
  {
    auto cube = DataCube::Build(*db, 2);
    CORRMINE_CHECK(cube.ok());
    CubeCountProvider cube_provider(*cube, &*db);
    RandomWalkOptions options;
    options.miner = miner;
    options.miner.max_level = 2;  // Stay within the cube's dimension.
    options.max_itemset_size = 2;
    options.num_walks = 10000;
    auto start = std::chrono::steady_clock::now();
    auto result = MineCorrelationsRandomWalk(cube_provider,
                                             db->num_items(), options);
    CORRMINE_CHECK(result.ok());
    table.AddRow({"random walk x10000 on datacube (pairs)",
                  io::FormatDouble(SecondsSince(start), 3),
                  std::to_string(result->significant.size())});
  }

  std::cout << "== Random walk vs level-wise ==\n\n";
  table.Print(std::cout);
  std::cout << "\nwalks find subsets of the exact border ("
            << level_wise_found
            << " sets); coverage grows with the walk budget.\n";
  corrmine::bench::EmitMetricsLine("bench_random_walk");
  return 0;
}
