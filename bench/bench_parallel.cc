// Throughput of the parallel level-wise mining engine at 1/2/4/8 threads on
// Quest-style synthetic data, plus the prefix-intersection cache's AND-word
// accounting on the same workload. Emits one machine-readable JSON line
// (prefixed "BENCH_JSON ") per run so the BENCH_*.json trajectory files can
// be seeded straight from the output; the human-readable table follows.
//
// Determinism contract: every thread count must produce the same
// MiningResult; this harness CHECK-fails if any run diverges from the
// single-thread baseline.

#include <chrono>

#include "bench_metrics.h"
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/pmu.h"
#include "common/profiler.h"
#include "common/trace.h"
#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string ResultFingerprint(const MiningResult& result) {
  std::ostringstream out;
  for (const CorrelationRule& rule : result.significant) {
    out << rule.itemset.ToString() << ':' << rule.chi2.statistic << ';';
  }
  for (const LevelStats& level : result.levels) {
    out << level.level << '/' << level.candidates << '/' << level.discards
        << '/' << level.significant << '/' << level.not_significant << ';';
  }
  return out.str();
}

struct ThreadRun {
  int threads;
  double seconds;
};

/// a/b with a 0 fallback: sub-millisecond timer readings can round to 0 on
/// fast machines, and a speedup of 0 is a clearer "no signal" than inf/nan.
double SafeRatio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;

  // Quest workload sized so the 8-thread run still has thousands of
  // candidate evaluations per flush; low min_count pushes the search to
  // level 3+ where the prefix cache has siblings to share.
  datagen::QuestOptions quest;
  quest.num_transactions = 20000;
  quest.num_items = 400;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 80;
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok());
  BitmapCountProvider provider(*db);

  MinerOptions options;
  options.support.min_count = static_cast<uint64_t>(
      0.01 * static_cast<double>(db->num_baskets()));
  options.support.cell_fraction = 0.25 + 1e-9;

  // Thread sweep. Each setting is checked against the sequential baseline
  // fingerprint — the speedup numbers are only meaningful if the outputs
  // are identical.
  std::string baseline_fingerprint;
  uint64_t total_candidates = 0;
  std::vector<ThreadRun> runs;
  for (int threads : {1, 2, 4, 8}) {
    options.num_threads = threads;
    auto start = std::chrono::steady_clock::now();
    auto result = MineCorrelations(provider, db->num_items(), options);
    double seconds = SecondsSince(start);
    CORRMINE_CHECK(result.ok()) << result.status().ToString();
    std::string fingerprint = ResultFingerprint(*result);
    if (threads == 1) {
      baseline_fingerprint = fingerprint;
      for (const LevelStats& level : result->levels) {
        total_candidates += level.candidates;
      }
    } else {
      CORRMINE_CHECK(fingerprint == baseline_fingerprint)
          << "parallel run at " << threads << " threads diverged";
    }
    runs.push_back(ThreadRun{threads, seconds});
  }

  // Cache ablation, single-threaded so the AND-word deltas are attributable
  // to the cache alone. The counters come in pairs: what the cached
  // provider actually did vs. what the plain multi-way chain would cost for
  // the identical query stream.
  CachedCountProvider cached(provider.index());
  options.num_threads = 1;
  auto start = std::chrono::steady_clock::now();
  auto cached_result = MineCorrelations(cached, db->num_items(), options);
  double cached_seconds = SecondsSince(start);
  CORRMINE_CHECK(cached_result.ok());
  CORRMINE_CHECK(ResultFingerprint(*cached_result) == baseline_fingerprint)
      << "cached provider changed the mining result";
  CachedCountProvider::CacheStats cache = cached.stats();

  // Tracing overhead on the headline configuration: interleaved
  // traced/untraced repeats of the 8-thread run, best-of-3 each side so
  // scheduler and turbo jitter (easily 10%+ between single seconds-scale
  // runs) doesn't swamp the signal. The acceptance budget is a ratio
  // <= 1.05; both numbers go into the JSON line so sweeps can watch it.
  const ThreadRun& headline = runs.back();
  options.num_threads = headline.threads;
  uint64_t trace_events = 0;
  uint64_t trace_dropped = 0;
  double traced_seconds = 0.0;
  double untraced_seconds = 0.0;
  constexpr int kOverheadReps = 3;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    auto untraced_start = std::chrono::steady_clock::now();
    auto untraced_result = MineCorrelations(provider, db->num_items(), options);
    double seconds = SecondsSince(untraced_start);
    CORRMINE_CHECK(untraced_result.ok());
    if (rep == 0 || seconds < untraced_seconds) untraced_seconds = seconds;

    Tracer::Global().Start();
    auto traced_start = std::chrono::steady_clock::now();
    auto traced_result = MineCorrelations(provider, db->num_items(), options);
    seconds = SecondsSince(traced_start);
    Tracer::Global().Stop();
    CORRMINE_CHECK(traced_result.ok()) << traced_result.status().ToString();
    CORRMINE_CHECK(ResultFingerprint(*traced_result) == baseline_fingerprint)
        << "tracing changed the mining result";
    if (rep == 0 || seconds < traced_seconds) traced_seconds = seconds;
    trace_events = 0;
    trace_dropped = 0;
    for (const Tracer::ThreadTrace& thread : Tracer::Global().Collect()) {
      trace_events += thread.events.size();
      trace_dropped += thread.dropped;
    }
  }
  double trace_overhead = SafeRatio(traced_seconds, untraced_seconds);

  // Profiling overhead, same protocol: interleaved profiled/unprofiled
  // repeats with both collectors on (PMU if this machine grants it, plus
  // SIGPROF sampling at a deliberately coarse 10 ms so the bench measures
  // steady-state cost, not signal storms). Pure-observer is re-proven on
  // every rep via the fingerprint.
  double profiled_seconds = 0.0;
  double unprofiled_seconds = 0.0;
  uint64_t profile_samples = 0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    auto unprofiled_start = std::chrono::steady_clock::now();
    auto unprofiled_result =
        MineCorrelations(provider, db->num_items(), options);
    double seconds = SecondsSince(unprofiled_start);
    CORRMINE_CHECK(unprofiled_result.ok());
    if (rep == 0 || seconds < unprofiled_seconds) unprofiled_seconds = seconds;

    ProfilerOptions profiler_options;
    profiler_options.pmu = true;
    profiler_options.sampling = true;
    profiler_options.sample_interval_usec = 10000;
    Profiler::Global().Start(profiler_options);
    auto profiled_start = std::chrono::steady_clock::now();
    auto profiled_result =
        MineCorrelations(provider, db->num_items(), options);
    seconds = SecondsSince(profiled_start);
    Profiler::Global().Stop();
    CORRMINE_CHECK(profiled_result.ok())
        << profiled_result.status().ToString();
    CORRMINE_CHECK(ResultFingerprint(*profiled_result) ==
                   baseline_fingerprint)
        << "profiling changed the mining result";
    if (rep == 0 || seconds < profiled_seconds) profiled_seconds = seconds;
    profile_samples = Profiler::Global().samples_recorded();
  }
  double profile_overhead = SafeRatio(profiled_seconds, unprofiled_seconds);
  const bool pmu_available = ProbePmu().available;

  // Machine-readable line first (the BENCH_*.json seed), table second.
  // Doubles go through FormatJsonNumber so the seed never holds
  // scientific notation (exact integers stay exact).
  const auto num = [](double v) { return bench::FormatJsonNumber(v); };
  std::ostringstream json;
  json << "\"workload\":\"quest\""
       << ",\"baskets\":" << db->num_baskets()
       << ",\"items\":" << static_cast<uint64_t>(db->num_items())
       << ",\"candidates\":" << total_candidates << ",\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) json << ',';
    json << "{\"threads\":" << runs[i].threads << ",\"seconds\":"
         << num(runs[i].seconds) << ",\"speedup\":"
         << num(SafeRatio(runs[0].seconds, runs[i].seconds)) << '}';
  }
  json << "],\"cache\":{\"seconds\":" << num(cached_seconds)
       << ",\"queries\":" << cache.queries << ",\"hits\":" << cache.hits
       << ",\"misses\":" << cache.misses
       << ",\"and_word_ops\":" << cache.and_word_ops
       << ",\"uncached_and_word_ops\":" << cache.uncached_and_word_ops
       << ",\"and_word_ops_saved\":"
       << cache.uncached_and_word_ops - cache.and_word_ops << "}"
       << ",\"trace\":{\"threads\":" << headline.threads
       << ",\"seconds\":" << num(traced_seconds)
       << ",\"untraced_seconds\":" << num(untraced_seconds)
       << ",\"overhead_ratio\":" << num(trace_overhead)
       << ",\"events\":" << trace_events
       << ",\"dropped\":" << trace_dropped << "}"
       << ",\"profile\":{\"threads\":" << headline.threads
       << ",\"seconds\":" << num(profiled_seconds)
       << ",\"unprofiled_seconds\":" << num(unprofiled_seconds)
       << ",\"overhead_ratio\":" << num(profile_overhead)
       << ",\"samples\":" << profile_samples
       << ",\"pmu_available\":" << (pmu_available ? "true" : "false") << "}";
  bench::EmitBenchJsonLine("bench_parallel", json.str());

  io::TablePrinter table({"threads", "mine s", "speedup"});
  for (const ThreadRun& run : runs) {
    table.AddRow({std::to_string(run.threads),
                  io::FormatDouble(run.seconds, 3),
                  io::FormatDouble(SafeRatio(runs[0].seconds, run.seconds),
                                   2)});
  }
  std::cout << "== Parallel miner throughput (quest, s = 1%) ==\n\n";
  table.Print(std::cout);
  std::cout << "\n== Prefix-intersection cache (1 thread, same workload) =="
            << "\n\nAND word ops: " << cache.and_word_ops << " cached vs "
            << cache.uncached_and_word_ops << " uncached ("
            << io::FormatDouble(
                   100.0 *
                       SafeRatio(
                           static_cast<double>(cache.uncached_and_word_ops -
                                               cache.and_word_ops),
                           static_cast<double>(cache.uncached_and_word_ops)),
                   1)
            << "% saved), " << cache.hits << " hits / " << cache.misses
            << " misses.\n";
  std::cout << "\n== Tracing overhead (" << headline.threads
            << " threads) ==\n\ntraced " << io::FormatDouble(traced_seconds, 3)
            << "s vs " << io::FormatDouble(untraced_seconds, 3)
            << "s untraced (best of " << kOverheadReps << ", ratio "
            << io::FormatDouble(trace_overhead, 3) << "), " << trace_events
            << " events recorded, " << trace_dropped << " dropped.\n";
  std::cout << "\n== Profiling overhead (" << headline.threads
            << " threads, PMU " << (pmu_available ? "on" : "unavailable")
            << " + 10ms sampling) ==\n\nprofiled "
            << io::FormatDouble(profiled_seconds, 3) << "s vs "
            << io::FormatDouble(unprofiled_seconds, 3)
            << "s unprofiled (best of " << kOverheadReps << ", ratio "
            << io::FormatDouble(profile_overhead, 3) << "), "
            << profile_samples << " samples captured.\n";
  cached.PublishMetrics(&MetricsRegistry::Global());
  corrmine::bench::EmitMetricsLine("bench_parallel");
  return 0;
}
