// Ablation: the three counting strategies behind contingency-table
// construction — per-query database scan, per-item bitmaps (AND/popcount),
// and the datacube — over varying database sizes and itemset sizes.

#include "common/logging.h"
#include <benchmark/benchmark.h>

#include "bench_metrics.h"

#include "cube/datacube.h"
#include "datagen/quest_generator.h"
#include "itemset/compressed_bitmap.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

const TransactionDatabase& SharedDb(size_t num_baskets) {
  static auto* cache =
      new std::map<size_t, TransactionDatabase>();
  auto it = cache->find(num_baskets);
  if (it == cache->end()) {
    datagen::QuestOptions options;
    options.num_transactions = num_baskets;
    options.num_items = 200;
    options.avg_transaction_size = 12.0;
    options.num_patterns = 100;
    auto db = datagen::GenerateQuestData(options);
    CORRMINE_CHECK(db.ok());
    it = cache->emplace(num_baskets, std::move(*db)).first;
  }
  return it->second;
}

Itemset FrequentPair(const TransactionDatabase& db) {
  // The two most frequent items — worst case for scanning.
  ItemId best = 0, second = 1;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.ItemCount(i) > db.ItemCount(best)) {
      second = best;
      best = i;
    } else if (db.ItemCount(i) > db.ItemCount(second) && i != best) {
      second = i;
    }
  }
  return Itemset{best, second};
}

void BM_CountScan(benchmark::State& state) {
  const auto& db = SharedDb(static_cast<size_t>(state.range(0)));
  ScanCountProvider provider(db);
  Itemset pair = FrequentPair(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountAllPresent(pair));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.num_baskets()));
}
BENCHMARK(BM_CountScan)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CountBitmap(benchmark::State& state) {
  const auto& db = SharedDb(static_cast<size_t>(state.range(0)));
  BitmapCountProvider provider(db);
  Itemset pair = FrequentPair(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountAllPresent(pair));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.num_baskets()));
}
BENCHMARK(BM_CountBitmap)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CountCube(benchmark::State& state) {
  const auto& db = SharedDb(static_cast<size_t>(state.range(0)));
  static auto* cubes = new std::map<size_t, DataCube>();
  auto it = cubes->find(db.num_baskets());
  if (it == cubes->end()) {
    auto cube = DataCube::Build(db, 2);
    CORRMINE_CHECK(cube.ok());
    it = cubes->emplace(db.num_baskets(), std::move(*cube)).first;
  }
  CubeCountProvider provider(it->second, &db);
  Itemset pair = FrequentPair(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountAllPresent(pair));
  }
}
BENCHMARK(BM_CountCube)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CountCompressed(benchmark::State& state) {
  const auto& db = SharedDb(static_cast<size_t>(state.range(0)));
  CompressedCountProvider provider(db);
  Itemset pair = FrequentPair(db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountAllPresent(pair));
  }
  state.counters["index_bytes"] =
      static_cast<double>(provider.index().MemoryBytes());
}
BENCHMARK(BM_CountCompressed)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_BitmapMultiWayAnd(benchmark::State& state) {
  const auto& db = SharedDb(10000);
  BitmapCountProvider provider(db);
  std::vector<ItemId> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(static_cast<ItemId>(i));
  }
  Itemset s(items);
  for (auto _ : state) {
    benchmark::DoNotOptimize(provider.CountAllPresent(s));
  }
}
BENCHMARK(BM_BitmapMultiWayAnd)->DenseRange(2, 8, 2);

void BM_VerticalIndexBuild(benchmark::State& state) {
  const auto& db = SharedDb(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    VerticalIndex index(db);
    benchmark::DoNotOptimize(index.num_baskets());
  }
}
BENCHMARK(BM_VerticalIndexBuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace corrmine

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a
// BENCH_METRICS registry snapshot, like the harness-style benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  corrmine::bench::EmitMetricsLine("bench_count_provider");
  return 0;
}
