// Regenerates Table 5 of the paper: the effectiveness of support and
// significance pruning on IBM Quest synthetic data, reported per level as
// the number of possible itemsets, |CAND|, CAND discards, |SIG| and
// |NOTSIG|, plus end-to-end wall-clock time.
//
// Calibration (recorded in DESIGN.md): the paper gives n = 99997, 870
// items, |T| = 20, |I| = 4, but not the pattern-table size |L| or the
// support count s. We set |L| = 140 and s = 5% of n, which lands the
// level-2 candidate count at the paper's ~8019 and reproduces the
// shrink-per-level shape.

#include "common/logging.h"

#include "bench_metrics.h"
#include <chrono>
#include <iostream>
#include <string>

#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

int main() {
  using namespace corrmine;

  datagen::QuestOptions quest;
  quest.num_patterns = 140;
  auto gen_start = std::chrono::steady_clock::now();
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok()) << db.status().ToString();
  double gen_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    gen_start)
          .count();

  std::cout << "== Table 5: pruning effectiveness on Quest synthetic data "
               "==\n"
            << "n = " << db->num_baskets() << ", items = " << db->num_items()
            << ", avg basket " << quest.avg_transaction_size
            << ", avg pattern " << quest.avg_pattern_size
            << ", |L| = " << quest.num_patterns << " (generated in "
            << io::FormatDouble(gen_seconds, 2) << " s)\n\n";

  BitmapCountProvider provider(*db);
  MinerOptions options;
  options.support.min_count = static_cast<uint64_t>(
      0.05 * static_cast<double>(db->num_baskets()));
  options.support.cell_fraction = 0.25 + 1e-9;
  options.level_one = LevelOnePruning::kFigure1Strict;

  auto mine_start = std::chrono::steady_clock::now();
  auto result = MineCorrelations(provider, db->num_items(), options);
  CORRMINE_CHECK(result.ok()) << result.status().ToString();
  double mine_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    mine_start)
          .count();

  io::TablePrinter table({"level", "itemsets", "|CAND|", "CAND discards",
                          "|SIG|", "|NOTSIG|"});
  for (const LevelStats& level : result->levels) {
    table.AddRow({std::to_string(level.level),
                  std::to_string(level.possible_itemsets),
                  std::to_string(level.candidates),
                  std::to_string(level.discards),
                  std::to_string(level.significant),
                  std::to_string(level.not_significant)});
  }
  table.Print(std::cout);

  std::cout << "\npaper's Table 5 for reference:\n"
            << "  level 2: itemsets 378015, |CAND| 8019, discards 323, "
               "|SIG| 4114, |NOTSIG| 3582\n"
            << "  level 3: itemsets 109372340, |CAND| 782, discards 17, "
               "|SIG| 118, |NOTSIG| 647\n"
            << "  level 4: |CAND| 0 (search terminates)\n";
  std::cout << "\nmining wall clock: " << io::FormatDouble(mine_seconds, 2)
            << " s (paper: 2349 CPU s on a 166 MHz Pentium Pro)\n";
  corrmine::bench::EmitMetricsLine("table5_quest");
  return 0;
}
