// Microbenchmarks for the chi-squared statistic: the dense 2^k sum versus
// the paper's sparse occupied-cells rewrite (Section 4), across itemset
// sizes — the ablation for the "massaged formula" design choice.

#include <benchmark/benchmark.h>

#include "bench_metrics.h"

#include "common/logging.h"

#include "core/chi_squared_test.h"
#include "stats/chi_squared_distribution.h"
#include "core/contingency_table.h"
#include "datagen/rng.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

TransactionDatabase MakeData(ItemId num_items, size_t num_baskets,
                             uint64_t seed) {
  datagen::Rng rng(seed);
  TransactionDatabase db(num_items);
  for (size_t b = 0; b < num_baskets; ++b) {
    std::vector<ItemId> basket;
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(0.3)) basket.push_back(i);
    }
    auto st = db.AddBasket(std::move(basket));
    CORRMINE_CHECK(st.ok());
  }
  return db;
}

Itemset FirstK(int k) {
  std::vector<ItemId> items;
  for (int i = 0; i < k; ++i) items.push_back(static_cast<ItemId>(i));
  return Itemset(items);
}

void BM_ChiSquaredDense(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto db = MakeData(16, 4096, 42);
  BitmapCountProvider provider(db);
  auto table = ContingencyTable::Build(provider, FirstK(k));
  CORRMINE_CHECK(table.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeChiSquared(*table).statistic);
  }
  state.counters["cells"] = static_cast<double>(table->num_cells());
}
BENCHMARK(BM_ChiSquaredDense)->DenseRange(2, 14, 3);

void BM_ChiSquaredSparse(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto db = MakeData(16, 4096, 42);
  auto table = SparseContingencyTable::Build(db, FirstK(k));
  CORRMINE_CHECK(table.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeChiSquared(*table).statistic);
  }
  state.counters["occupied"] =
      static_cast<double>(table->occupied_cells().size());
}
BENCHMARK(BM_ChiSquaredSparse)->DenseRange(2, 14, 3);

void BM_DenseTableBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto db = MakeData(16, 4096, 42);
  BitmapCountProvider provider(db);
  Itemset s = FirstK(k);
  for (auto _ : state) {
    auto table = ContingencyTable::Build(provider, s);
    benchmark::DoNotOptimize(table.ok());
  }
}
BENCHMARK(BM_DenseTableBuild)->DenseRange(2, 8, 2);

void BM_SparseTableBuild(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  auto db = MakeData(16, 4096, 42);
  Itemset s = FirstK(k);
  for (auto _ : state) {
    auto table = SparseContingencyTable::Build(db, s);
    benchmark::DoNotOptimize(table.ok());
  }
}
BENCHMARK(BM_SparseTableBuild)->DenseRange(2, 8, 2);

void BM_ChiSquaredCriticalValue(benchmark::State& state) {
  double alpha = 0.95;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::ChiSquaredCriticalValue(alpha, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ChiSquaredCriticalValue)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace corrmine

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a
// BENCH_METRICS registry snapshot, like the harness-style benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  corrmine::bench::EmitMetricsLine("bench_chi_squared");
  return 0;
}
