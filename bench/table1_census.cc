// Regenerates Table 1 of the paper: the census item dictionary (attribute /
// non-attribute labels) and the first baskets of the generated population,
// shown in the paper's "basket -> items" form.

#include "common/logging.h"

#include "bench_metrics.h"
#include <iostream>
#include <string>

#include "datagen/census_generator.h"
#include "io/table_printer.h"

int main() {
  using namespace corrmine;
  using datagen::CensusItems;
  using datagen::kCensusNumItems;

  std::cout << "== Table 1: census item space I ==\n\n";
  io::TablePrinter items({"item", "attribute", "possible non-attribute "
                                               "values"});
  for (int i = 0; i < kCensusNumItems; ++i) {
    items.AddRow({"i" + std::to_string(i), CensusItems()[i].attribute,
                  CensusItems()[i].non_attribute});
  }
  items.Print(std::cout);

  datagen::CensusOptions options;
  auto db = datagen::GenerateCensusData(options);
  CORRMINE_CHECK(db.ok()) << db.status().ToString();

  std::cout << "\n== Table 1 (cont.): first 9 of " << db->num_baskets()
            << " generated baskets ==\n\n";
  io::TablePrinter baskets({"basket", "items"});
  for (size_t row = 0; row < 9 && row < db->num_baskets(); ++row) {
    std::string contents;
    for (ItemId item : db->basket(row)) {
      if (!contents.empty()) contents += ", ";
      contents += "i" + std::to_string(item);
    }
    baskets.AddRow({std::to_string(row + 1), contents});
  }
  baskets.Print(std::cout);

  std::cout << "\nMarginals of the generated population vs. the paper's "
               "(from Table 3):\n\n";
  const auto& model = datagen::CensusModel::Paper();
  io::TablePrinter marginals({"item", "paper %", "generated %"});
  for (int i = 0; i < kCensusNumItems; ++i) {
    auto p = db->ItemProbability(static_cast<ItemId>(i));
    CORRMINE_CHECK(p.ok());
    marginals.AddRow({"i" + std::to_string(i),
                      io::FormatPercent(model.Marginal(i), 1),
                      io::FormatPercent(*p, 1)});
  }
  marginals.Print(std::cout);
  corrmine::bench::EmitMetricsLine("table1_census");
  return 0;
}
