// The "non-collapsed" analysis the paper's Section 5.1 calls for but never
// runs: chi-squared dependencies between multi-valued census attributes,
// with (r-1)(c-1) degrees of freedom and per-category dominant cells. The
// binary collapse in Table 2 can only say "transport and marital status
// are correlated"; the categorical table localizes *which* categories
// drive it (e.g. carpooling vs. not driving behave differently).

#include <iostream>

#include "bench_metrics.h"
#include <string>

#include "common/logging.h"
#include "datagen/categorical_census.h"
#include "io/table_printer.h"
#include "mining/categorical_miner.h"

int main() {
  using namespace corrmine;

  datagen::CategoricalCensusOptions options;
  auto db = datagen::GenerateCategoricalCensus(options);
  CORRMINE_CHECK(db.ok()) << db.status().ToString();

  std::cout << "== Non-collapsed census dependencies (Section 5.1 "
               "extension) ==\n"
            << "n = " << db->num_rows() << " persons, "
            << db->num_attributes() << " multi-valued attributes\n\n";

  io::TablePrinter attrs({"attribute", "categories"});
  for (int a = 0; a < db->num_attributes(); ++a) {
    std::string categories;
    for (const std::string& c : db->attribute(a).categories) {
      if (!categories.empty()) categories += " | ";
      categories += c;
    }
    attrs.AddRow({db->attribute(a).name, categories});
  }
  attrs.Print(std::cout);

  CategoricalMinerOptions miner;
  miner.min_expected_cell = 1.0;
  auto deps = MineCategoricalDependencies(*db, miner);
  CORRMINE_CHECK(deps.ok()) << deps.status().ToString();

  std::cout << "\nsignificant dependencies (by Cramer's V):\n\n";
  io::TablePrinter table({"a", "b", "chi2", "dof", "Cramer V",
                          "dominant cell", "interest"});
  for (const CategoricalDependency& dep : *deps) {
    const auto& a = db->attribute(dep.attribute_a);
    const auto& b = db->attribute(dep.attribute_b);
    table.AddRow({a.name, b.name, io::FormatDouble(dep.chi_squared, 1),
                  std::to_string(dep.dof),
                  io::FormatDouble(dep.cramers_v, 3),
                  a.categories[dep.dominant_category_a] + " x " +
                      b.categories[dep.dominant_category_b],
                  io::FormatDouble(dep.dominant_interest, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nreading: the military x age dependency localizes to the "
               "veteran x over-40 cell\n(the paper's Example 4), while "
               "binary mining could never separate 'carpools'\nfrom 'does "
               "not drive' in the transport column.\n";
  corrmine::bench::EmitMetricsLine("table_categorical");
  return 0;
}
