// Out-of-core mining under a hard memory budget (DESIGN.md §12). The
// workload is the acceptance scenario for the spill pipeline: a quest
// dataset whose in-memory mining footprint (uncompressed bitmap index +
// row store) is >= 10x the --memory-budget, mined end to end with
// MineCorrelationsOutOfCore while the process peak RSS is tracked. The
// budget contract is about the data: spill partitions, one mapped CCS1
// shard at a time, and the capped warm-up memo are the only data-sized
// allocations, so peak RSS must stay within 1.1x of the budget no matter
// how far the dataset outgrows it.
//
// getrusage peak RSS is process-monotone, so ordering is load-bearing:
// the dataset is generated and written in small chunks (never holding the
// whole database), the budgeted PARALLEL out-of-core mine (threads=0,
// admission-controlled — the configuration the RSS gate judges) runs
// FIRST and its peak is read immediately after; only then do the serial
// pass-1 baseline (for the outofcore_scaling gate) and the (small,
// in-memory) differential check run.
//
// Emits one "BENCH_JSON" line (the BENCH_outofcore.json seed) consumed by
// tools/benchgate, which enforces the RSS ceiling, the >= 10x
// dataset-over-budget floor, the v2 spill-compression ratio and —
// on machines with enough cores — the pipelined pass-1 speedup. The
// harness CHECK-fails if the out-of-core result ever differs from the
// in-memory bytes, or if the parallel and forced-serial runs diverge —
// exactness is part of the bench, not just the test suite.

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/session.h"
#include "datagen/quest_generator.h"
#include "io/binary_io.h"
#include "mining/partition.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString() + ':' +
           std::to_string(Bits(rule.chi2.statistic)) + ':' +
           std::to_string(Bits(rule.chi2.p_value)) + ';';
  }
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.candidates) + '/' +
           std::to_string(level.significant) + '/' +
           std::to_string(level.not_significant) + ';';
  }
  return out;
}

/// Streams a quest dataset to `path` in small multi-segment CMB1 chunks —
/// the whole database never exists in memory, so generation cannot set a
/// peak RSS the mining gate would then be judged against. Returns the
/// total item-occurrence count (the row-store term of dataset_bytes).
uint64_t WriteChunkedQuest(const std::string& path, uint64_t total_rows,
                           uint32_t num_items, uint64_t seed) {
  constexpr uint64_t kChunkRows = 50000;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CORRMINE_CHECK(out.good()) << "cannot write " << path;
  uint64_t occurrences = 0;
  for (uint64_t start = 0; start < total_rows; start += kChunkRows) {
    datagen::QuestOptions quest;
    quest.num_transactions = std::min(kChunkRows, total_rows - start);
    quest.num_items = num_items;
    // Same seed for every chunk: the quest pattern universe is seed-drawn,
    // so a constant seed keeps the planted correlations at full strength
    // across the whole file (distinct seeds would dilute them ~1/chunks
    // and the budgeted mine would find nothing). The spill and counting
    // paths are row-oblivious — repeated segments exercise them fully.
    quest.seed = seed;
    auto chunk = datagen::GenerateQuestData(quest);
    CORRMINE_CHECK(chunk.ok()) << chunk.status().ToString();
    for (size_t row = 0; row < chunk->num_baskets(); ++row) {
      occurrences += chunk->basket(row).size();
    }
    const std::string encoded = io::EncodeBinaryTransactions(*chunk);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    CORRMINE_CHECK(out.good()) << "short write to " << path;
  }
  return occurrences;
}

struct Run {
  uint64_t budget_bytes = 0;
  uint64_t dataset_bytes = 0;
  uint64_t num_baskets = 0;
  uint64_t peak_rss_bytes = 0;
  uint64_t partitions = 0;
  uint64_t spilled_payload_bytes = 0;
  uint64_t spilled_encoded_bytes = 0;
  uint64_t candidate_queries = 0;
  uint64_t memo_misses = 0;
  uint64_t significant = 0;
  int admitted = 1;
  int threads = 1;
  int usable_cores = 1;
  double seconds = 0.0;
  double pass1_parallel_seconds = 0.0;
  double pass1_serial_seconds = 0.0;
  double pass1_speedup = 0.0;
  double spill_ratio = 1.0;
};

int Main() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "corrmine_bench_outofcore";
  std::filesystem::create_directories(dir);

  // The budgeted run: ~1.9M baskets over the paper's 870-item space. The
  // in-memory footprint this run avoids is the uncompressed per-item
  // bitmap index (870 x ceil(rows/64) x 8 bytes) plus the uint32 row
  // store — ~360 MB against a 32 MiB budget, an 11x overhang.
  constexpr uint64_t kBudget = uint64_t{32} << 20;
  constexpr uint64_t kRows = 1900000;
  constexpr uint32_t kItems = 870;
  const std::string big = (dir / "big.cmb").string();
  const uint64_t occurrences = WriteChunkedQuest(big, kRows, kItems, 1997);
  const uint64_t dataset_bytes =
      uint64_t{kItems} * ((kRows + 63) / 64) * 8 + occurrences * 4;

  OutOfCoreMinerOptions options;
  options.miner.support.min_count = kRows / 20;  // 5% support
  options.miner.support.cell_fraction = 0.26;
  options.miner.max_level = 3;
  // The RSS-gated configuration is the parallel one: threads=0 resolves
  // to the usable core count and the admission controller decides how
  // many partitions overlap. This run MUST be first — getrusage peak is
  // monotone, so any later run inherits (and could mask) its ceiling.
  options.miner.num_threads = 0;
  options.memory_budget_bytes = kBudget;
  options.spill_dir = (dir / "spill").string();

  OutOfCoreStats stats;
  auto start = std::chrono::steady_clock::now();
  auto mined = MineCorrelationsOutOfCore(big, options, &stats);
  const double seconds = SecondsSince(start);
  // Read the monotone peak immediately: everything after this line may
  // allocate without polluting the budgeted measurement.
  const uint64_t peak_rss = PeakRssBytes();
  CORRMINE_CHECK(mined.ok()) << mined.status().ToString();

  // Serial pass-1 baseline for the outofcore_scaling gate: one thread,
  // no pool, admitted = 1, so spill and partition mines never overlap.
  // Also the strongest determinism evidence the bench can give — the
  // parallel and serial runs must produce identical result bytes.
  OutOfCoreMinerOptions serial_options = options;
  serial_options.miner.num_threads = 1;
  serial_options.spill_dir = (dir / "spill_serial").string();
  OutOfCoreStats serial_stats;
  auto serial_mined = MineCorrelationsOutOfCore(big, serial_options,
                                                &serial_stats);
  CORRMINE_CHECK(serial_mined.ok()) << serial_mined.status().ToString();
  CORRMINE_CHECK(Fingerprint(*mined) == Fingerprint(*serial_mined))
      << "parallel out-of-core mine diverged from the serial run";

  Run run;
  run.budget_bytes = kBudget;
  run.dataset_bytes = dataset_bytes;
  run.num_baskets = stats.num_baskets;
  run.peak_rss_bytes = peak_rss;
  run.partitions = stats.partitions;
  run.spilled_payload_bytes = stats.spilled_payload_bytes;
  run.spilled_encoded_bytes = stats.spilled_encoded_bytes;
  run.candidate_queries = stats.candidate_queries;
  run.memo_misses = stats.memo_misses;
  run.significant = mined->significant.size();
  run.admitted = stats.admitted;
  run.threads = ThreadPool::ResolveThreadCount(0);
  run.usable_cores = ThreadPool::UsableHardwareConcurrency();
  run.seconds = seconds;
  run.pass1_parallel_seconds = stats.spill_pass1_seconds;
  run.pass1_serial_seconds = serial_stats.spill_pass1_seconds;
  run.pass1_speedup = stats.spill_pass1_seconds > 0.0
                          ? serial_stats.spill_pass1_seconds /
                                stats.spill_pass1_seconds
                          : 0.0;
  run.spill_ratio =
      run.spilled_payload_bytes > 0
          ? static_cast<double>(run.spilled_encoded_bytes) /
                static_cast<double>(run.spilled_payload_bytes)
          : 1.0;

  // Differential check on a dataset small enough to also mine in memory
  // (still multi-partition under its budget). Peak RSS was already
  // recorded, so the in-memory side cannot contaminate the gate.
  // 870 items keeps the mean item frequency (~2.3%) well under the 5%
  // support floor — strong pruning, so miner state stays small and the
  // budget contract is about the data, not the lattice.
  const std::string small = (dir / "small.cmb").string();
  WriteChunkedQuest(small, 60000, 870, 42);
  OutOfCoreMinerOptions small_options;
  small_options.miner.support.min_count = 3000;
  small_options.miner.support.cell_fraction = 0.26;
  small_options.miner.max_level = 3;
  small_options.memory_budget_bytes = uint64_t{6} << 20;
  small_options.spill_dir = (dir / "spill_small").string();
  OutOfCoreStats small_stats;
  auto ooc = MineCorrelationsOutOfCore(small, small_options, &small_stats);
  CORRMINE_CHECK(ooc.ok()) << ooc.status().ToString();
  auto session = MiningSession::Open(small, {});
  CORRMINE_CHECK(session.ok()) << session.status().ToString();
  auto in_memory = session->Mine(small_options.miner);
  CORRMINE_CHECK(in_memory.ok()) << in_memory.status().ToString();
  CORRMINE_CHECK(Fingerprint(*ooc) == Fingerprint(*in_memory))
      << "out-of-core mine diverged from the in-memory miner";
  CORRMINE_CHECK(small_stats.partitions >= 2)
      << "differential check did not exercise multi-partition spill";

  // Every number routes through FormatJsonNumber: byte counts and row
  // counts must seed BENCH_outofcore.json as exact integers, never
  // scientific notation (a "3.35544e+07" budget is not 33554432 bytes).
  const auto num = [](double v) { return bench::FormatJsonNumber(v); };
  std::ostringstream fields;
  fields << "\"runs\":[{\"budget_bytes\":" << num(run.budget_bytes)
         << ",\"dataset_bytes\":" << num(run.dataset_bytes)
         << ",\"num_baskets\":" << num(run.num_baskets)
         << ",\"peak_rss_bytes\":" << num(run.peak_rss_bytes)
         << ",\"partitions\":" << num(run.partitions)
         << ",\"spilled_payload_bytes\":" << num(run.spilled_payload_bytes)
         << ",\"spilled_encoded_bytes\":" << num(run.spilled_encoded_bytes)
         << ",\"spill_ratio\":" << num(run.spill_ratio)
         << ",\"candidate_queries\":" << num(run.candidate_queries)
         << ",\"memo_misses\":" << num(run.memo_misses)
         << ",\"significant\":" << num(run.significant)
         << ",\"admitted\":" << num(run.admitted)
         << ",\"threads\":" << num(run.threads)
         << ",\"usable_cores\":" << num(run.usable_cores)
         << ",\"seconds\":" << num(run.seconds)
         << ",\"pass1_parallel_seconds\":" << num(run.pass1_parallel_seconds)
         << ",\"pass1_serial_seconds\":" << num(run.pass1_serial_seconds)
         << ",\"pass1_speedup\":" << num(run.pass1_speedup) << "}]";
  bench::EmitBenchJsonLine("bench_outofcore", fields.str());

  std::cout << "out-of-core: " << run.num_baskets << " baskets, "
            << run.dataset_bytes / (1 << 20) << " MiB dataset vs "
            << run.budget_bytes / (1 << 20) << " MiB budget ("
            << static_cast<double>(run.dataset_bytes) / run.budget_bytes
            << "x), peak RSS " << run.peak_rss_bytes / (1 << 20)
            << " MiB, " << run.partitions << " partitions (admitted "
            << run.admitted << ", " << run.threads << " threads), spill "
            << run.spilled_encoded_bytes / (1 << 20) << "/"
            << run.spilled_payload_bytes / (1 << 20) << " MiB ("
            << run.spill_ratio << "x), pass-1 "
            << run.pass1_parallel_seconds << " s vs serial "
            << run.pass1_serial_seconds << " s ("
            << run.pass1_speedup << "x), " << run.significant
            << " rules in " << run.seconds << " s\n";

  bench::EmitMetricsLine("bench_outofcore");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}

}  // namespace
}  // namespace corrmine

int main() { return corrmine::Main(); }
