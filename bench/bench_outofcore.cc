// Out-of-core mining under a hard memory budget (DESIGN.md §12). The
// workload is the acceptance scenario for the spill pipeline: a quest
// dataset whose in-memory mining footprint (uncompressed bitmap index +
// row store) is >= 10x the --memory-budget, mined end to end with
// MineCorrelationsOutOfCore while the process peak RSS is tracked. The
// budget contract is about the data: spill partitions, one mapped CCS1
// shard at a time, and the capped warm-up memo are the only data-sized
// allocations, so peak RSS must stay within 1.1x of the budget no matter
// how far the dataset outgrows it.
//
// getrusage peak RSS is process-monotone, so ordering is load-bearing:
// the dataset is generated and written in small chunks (never holding the
// whole database), the budgeted out-of-core mine runs FIRST and its peak
// is read immediately after; only then does the (small, in-memory)
// differential check run.
//
// Emits one "BENCH_JSON" line (the BENCH_outofcore.json seed) consumed by
// tools/benchgate, which enforces the RSS ceiling and the >= 10x
// dataset-over-budget floor. The harness CHECK-fails if the out-of-core
// result ever differs from the in-memory bytes — exactness is part of the
// bench, not just the test suite.

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "common/logging.h"
#include "common/trace.h"
#include "core/session.h"
#include "datagen/quest_generator.h"
#include "io/binary_io.h"
#include "mining/partition.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString() + ':' +
           std::to_string(Bits(rule.chi2.statistic)) + ':' +
           std::to_string(Bits(rule.chi2.p_value)) + ';';
  }
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.candidates) + '/' +
           std::to_string(level.significant) + '/' +
           std::to_string(level.not_significant) + ';';
  }
  return out;
}

/// Streams a quest dataset to `path` in small multi-segment CMB1 chunks —
/// the whole database never exists in memory, so generation cannot set a
/// peak RSS the mining gate would then be judged against. Returns the
/// total item-occurrence count (the row-store term of dataset_bytes).
uint64_t WriteChunkedQuest(const std::string& path, uint64_t total_rows,
                           uint32_t num_items, uint64_t seed) {
  constexpr uint64_t kChunkRows = 50000;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CORRMINE_CHECK(out.good()) << "cannot write " << path;
  uint64_t occurrences = 0;
  for (uint64_t start = 0; start < total_rows; start += kChunkRows) {
    datagen::QuestOptions quest;
    quest.num_transactions = std::min(kChunkRows, total_rows - start);
    quest.num_items = num_items;
    // Same seed for every chunk: the quest pattern universe is seed-drawn,
    // so a constant seed keeps the planted correlations at full strength
    // across the whole file (distinct seeds would dilute them ~1/chunks
    // and the budgeted mine would find nothing). The spill and counting
    // paths are row-oblivious — repeated segments exercise them fully.
    quest.seed = seed;
    auto chunk = datagen::GenerateQuestData(quest);
    CORRMINE_CHECK(chunk.ok()) << chunk.status().ToString();
    for (size_t row = 0; row < chunk->num_baskets(); ++row) {
      occurrences += chunk->basket(row).size();
    }
    const std::string encoded = io::EncodeBinaryTransactions(*chunk);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    CORRMINE_CHECK(out.good()) << "short write to " << path;
  }
  return occurrences;
}

struct Run {
  uint64_t budget_bytes = 0;
  uint64_t dataset_bytes = 0;
  uint64_t num_baskets = 0;
  uint64_t peak_rss_bytes = 0;
  uint64_t partitions = 0;
  uint64_t spilled_payload_bytes = 0;
  uint64_t candidate_queries = 0;
  uint64_t memo_misses = 0;
  uint64_t significant = 0;
  double seconds = 0.0;
};

int Main() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "corrmine_bench_outofcore";
  std::filesystem::create_directories(dir);

  // The budgeted run: ~1.9M baskets over the paper's 870-item space. The
  // in-memory footprint this run avoids is the uncompressed per-item
  // bitmap index (870 x ceil(rows/64) x 8 bytes) plus the uint32 row
  // store — ~360 MB against a 32 MiB budget, an 11x overhang.
  constexpr uint64_t kBudget = uint64_t{32} << 20;
  constexpr uint64_t kRows = 1900000;
  constexpr uint32_t kItems = 870;
  const std::string big = (dir / "big.cmb").string();
  const uint64_t occurrences = WriteChunkedQuest(big, kRows, kItems, 1997);
  const uint64_t dataset_bytes =
      uint64_t{kItems} * ((kRows + 63) / 64) * 8 + occurrences * 4;

  OutOfCoreMinerOptions options;
  options.miner.support.min_count = kRows / 20;  // 5% support
  options.miner.support.cell_fraction = 0.26;
  options.miner.max_level = 3;
  options.miner.num_threads = 1;
  options.memory_budget_bytes = kBudget;
  options.spill_dir = (dir / "spill").string();

  OutOfCoreStats stats;
  auto start = std::chrono::steady_clock::now();
  auto mined = MineCorrelationsOutOfCore(big, options, &stats);
  const double seconds = SecondsSince(start);
  // Read the monotone peak immediately: everything after this line may
  // allocate without polluting the budgeted measurement.
  const uint64_t peak_rss = PeakRssBytes();
  CORRMINE_CHECK(mined.ok()) << mined.status().ToString();

  Run run;
  run.budget_bytes = kBudget;
  run.dataset_bytes = dataset_bytes;
  run.num_baskets = stats.num_baskets;
  run.peak_rss_bytes = peak_rss;
  run.partitions = stats.partitions;
  run.spilled_payload_bytes = stats.spilled_payload_bytes;
  run.candidate_queries = stats.candidate_queries;
  run.memo_misses = stats.memo_misses;
  run.significant = mined->significant.size();
  run.seconds = seconds;

  // Differential check on a dataset small enough to also mine in memory
  // (still multi-partition under its budget). Peak RSS was already
  // recorded, so the in-memory side cannot contaminate the gate.
  // 870 items keeps the mean item frequency (~2.3%) well under the 5%
  // support floor — strong pruning, so miner state stays small and the
  // budget contract is about the data, not the lattice.
  const std::string small = (dir / "small.cmb").string();
  WriteChunkedQuest(small, 60000, 870, 42);
  OutOfCoreMinerOptions small_options;
  small_options.miner.support.min_count = 3000;
  small_options.miner.support.cell_fraction = 0.26;
  small_options.miner.max_level = 3;
  small_options.memory_budget_bytes = uint64_t{6} << 20;
  small_options.spill_dir = (dir / "spill_small").string();
  OutOfCoreStats small_stats;
  auto ooc = MineCorrelationsOutOfCore(small, small_options, &small_stats);
  CORRMINE_CHECK(ooc.ok()) << ooc.status().ToString();
  auto session = MiningSession::Open(small, {});
  CORRMINE_CHECK(session.ok()) << session.status().ToString();
  auto in_memory = session->Mine(small_options.miner);
  CORRMINE_CHECK(in_memory.ok()) << in_memory.status().ToString();
  CORRMINE_CHECK(Fingerprint(*ooc) == Fingerprint(*in_memory))
      << "out-of-core mine diverged from the in-memory miner";
  CORRMINE_CHECK(small_stats.partitions >= 2)
      << "differential check did not exercise multi-partition spill";

  std::ostringstream fields;
  fields << "\"runs\":[{\"budget_bytes\":" << run.budget_bytes
         << ",\"dataset_bytes\":" << run.dataset_bytes
         << ",\"num_baskets\":" << run.num_baskets
         << ",\"peak_rss_bytes\":" << run.peak_rss_bytes
         << ",\"partitions\":" << run.partitions
         << ",\"spilled_payload_bytes\":" << run.spilled_payload_bytes
         << ",\"candidate_queries\":" << run.candidate_queries
         << ",\"memo_misses\":" << run.memo_misses
         << ",\"significant\":" << run.significant
         << ",\"seconds\":" << run.seconds << "}]";
  bench::EmitBenchJsonLine("bench_outofcore", fields.str());

  std::cout << "out-of-core: " << run.num_baskets << " baskets, "
            << run.dataset_bytes / (1 << 20) << " MiB dataset vs "
            << run.budget_bytes / (1 << 20) << " MiB budget ("
            << static_cast<double>(run.dataset_bytes) / run.budget_bytes
            << "x), peak RSS " << run.peak_rss_bytes / (1 << 20)
            << " MiB, " << run.partitions << " partitions, "
            << run.significant << " rules in " << run.seconds << " s\n";

  bench::EmitMetricsLine("bench_outofcore");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}

}  // namespace
}  // namespace corrmine

int main() { return corrmine::Main(); }
