// Scaling behaviour of the full mining pipeline: wall clock and per-level
// statistics as the basket count and the item count grow, on Quest data
// with proportional parameters. Complements the paper's single-point
// timing (Section 5.3) with the curves a systems reader would ask for.

#include <chrono>

#include "bench_metrics.h"
#include <iostream>
#include <string>

#include "common/logging.h"
#include "core/chi_squared_miner.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Row {
  uint64_t baskets;
  uint32_t items;
  double gen_seconds;
  double index_seconds;
  double mine_seconds;
  uint64_t candidates;
  uint64_t significant;
};

Row RunOnce(uint64_t baskets, uint32_t items, uint32_t patterns) {
  datagen::QuestOptions quest;
  quest.num_transactions = baskets;
  quest.num_items = items;
  quest.num_patterns = patterns;
  auto start = std::chrono::steady_clock::now();
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok());
  Row row{baskets, items, SecondsSince(start), 0, 0, 0, 0};

  start = std::chrono::steady_clock::now();
  BitmapCountProvider provider(*db);
  row.index_seconds = SecondsSince(start);

  MinerOptions options;
  options.support.min_count = static_cast<uint64_t>(
      0.05 * static_cast<double>(db->num_baskets()));
  options.support.cell_fraction = 0.25 + 1e-9;
  start = std::chrono::steady_clock::now();
  auto result = MineCorrelations(provider, db->num_items(), options);
  CORRMINE_CHECK(result.ok());
  row.mine_seconds = SecondsSince(start);
  for (const LevelStats& level : result->levels) {
    row.candidates += level.candidates;
    row.significant += level.significant;
  }
  return row;
}

void Emit(io::TablePrinter* table, const Row& row) {
  table->AddRow({std::to_string(row.baskets), std::to_string(row.items),
                 io::FormatDouble(row.gen_seconds, 3),
                 io::FormatDouble(row.index_seconds, 3),
                 io::FormatDouble(row.mine_seconds, 3),
                 std::to_string(row.candidates),
                 std::to_string(row.significant)});
}

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;
  io::TablePrinter table({"baskets", "items", "gen s", "index s", "mine s",
                          "cand", "sig"});

  // Basket-count sweep at the Table 5 item space.
  for (uint64_t baskets : {12500, 25000, 50000, 100000}) {
    Emit(&table, RunOnce(baskets, 870, 140));
  }
  // Item-count sweep at fixed baskets (patterns scale with items to keep
  // the frequent-item fraction comparable).
  for (uint32_t items : {200, 400, 800, 1600}) {
    Emit(&table, RunOnce(50000, items, items / 6));
  }

  std::cout << "== Mining pipeline scaling (quest data, s = 5%) ==\n\n";
  table.Print(std::cout);
  std::cout << "\nmine time is dominated by level-2 candidate evaluation "
               "(popcounts scale\nlinearly in baskets; candidate count "
               "quadratically in frequent items).\n";
  corrmine::bench::EmitMetricsLine("bench_scaling");
  return 0;
}
