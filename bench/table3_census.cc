// Regenerates Table 3 of the paper: the support-confidence analysis of all
// 45 census pairs — four cell supports (percent) and eight directed
// confidences, with the paper's thresholds (support 1%, confidence 0.5).
// Since the generator was calibrated against the paper's own pairwise
// joints, the printed supports double as a paper-vs-measured check.

#include "common/logging.h"

#include "bench_metrics.h"
#include <iostream>
#include <string>

#include "datagen/census_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "mining/association_rules.h"

int main() {
  using namespace corrmine;
  using datagen::kCensusNumItems;

  auto db = datagen::GenerateCensusData();
  CORRMINE_CHECK(db.ok()) << db.status().ToString();
  BitmapCountProvider provider(*db);
  const auto& model = datagen::CensusModel::Paper();

  std::cout << "== Table 3: support-confidence over all census pairs ==\n"
            << "supports in percent (cutoff 1%); confidences (cutoff 0.5) "
               "marked '!' when\nthe rule passes both tests. 'paper s_ab' "
               "is the published joint support.\n\n";

  io::TablePrinter table({"a", "b", "s_ab", "paper s_ab", "s_!ab", "s_a!b",
                          "s_!a!b", "a=>b", "!a=>b", "a=>!b", "!a=>!b",
                          "b=>a", "!b=>a", "b=>!a", "!b=>!a"});

  auto conf_cell = [](double conf, double support) {
    std::string cell = io::FormatDouble(conf, 2);
    if (conf >= 0.5 && support >= 0.01) cell += "!";
    return cell;
  };

  for (int a = 0; a < kCensusNumItems; ++a) {
    for (int b = a + 1; b < kCensusNumItems; ++b) {
      auto ct = ContingencyTable::Build(
          provider, Itemset{static_cast<ItemId>(a), static_cast<ItemId>(b)});
      CORRMINE_CHECK(ct.ok());
      auto pair = AnalyzePair(*ct);
      CORRMINE_CHECK(pair.ok());
      table.AddRow({
          "i" + std::to_string(a),
          "i" + std::to_string(b),
          io::FormatPercent(pair->s_ab, 1),
          io::FormatPercent(model.PairJoint(a, b), 1),
          io::FormatPercent(pair->s_nab, 1),
          io::FormatPercent(pair->s_anb, 1),
          io::FormatPercent(pair->s_nanb, 1),
          conf_cell(pair->a_to_b, pair->s_ab),
          conf_cell(pair->na_to_b, pair->s_nab),
          conf_cell(pair->a_to_nb, pair->s_anb),
          conf_cell(pair->na_to_nb, pair->s_nanb),
          conf_cell(pair->b_to_a, pair->s_ab),
          conf_cell(pair->nb_to_a, pair->s_anb),
          conf_cell(pair->b_to_na, pair->s_nab),
          conf_cell(pair->nb_to_na, pair->s_nanb),
      });
    }
  }
  table.Print(std::cout);

  std::cout << "\nPaper's observation to verify: every pair has all four "
               "cells above 1% support,\nso support-confidence mining "
               "floods the analyst while the chi-squared test\n(Table 2) "
               "cleanly separates correlated from uncorrelated pairs.\n";
  corrmine::bench::EmitMetricsLine("table3_census");
  return 0;
}
