// Scaling of candidate generation (Figure 1, Step 8): the cost of joining
// NOTSIG pairs and verifying subsets grows with |NOTSIG| — the paper's
// O(|NOTSIG|^2 * i) term. Measured here directly through the miner on
// synthetic data whose NOTSIG size is controlled by the item count.

#include <benchmark/benchmark.h>

#include "bench_metrics.h"

#include "common/logging.h"

#include "core/chi_squared_miner.h"
#include "datagen/rng.h"
#include "itemset/count_provider.h"

namespace corrmine {
namespace {

// Independent items: everything supported lands in NOTSIG, making the
// candidate-generation step the dominant cost.
TransactionDatabase IndependentDb(ItemId num_items, size_t num_baskets) {
  datagen::Rng rng(7);
  TransactionDatabase db(num_items);
  for (size_t b = 0; b < num_baskets; ++b) {
    std::vector<ItemId> basket;
    for (ItemId i = 0; i < num_items; ++i) {
      if (rng.NextBernoulli(0.4)) basket.push_back(i);
    }
    auto st = db.AddBasket(std::move(basket));
    CORRMINE_CHECK(st.ok());
  }
  return db;
}

void BM_CandidateGenerationViaLevel3(benchmark::State& state) {
  ItemId num_items = static_cast<ItemId>(state.range(0));
  auto db = IndependentDb(num_items, 400);
  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 2;
  options.support.cell_fraction = 0.26;
  options.max_level = 3;
  for (auto _ : state) {
    auto result = MineCorrelations(provider, num_items, options);
    benchmark::DoNotOptimize(result.ok());
  }
  // Report the NOTSIG size driving the join.
  auto result = MineCorrelations(provider, num_items, options);
  if (result.ok() && !result->levels.empty()) {
    state.counters["notsig_l2"] =
        static_cast<double>(result->levels[0].not_significant);
  }
}
BENCHMARK(BM_CandidateGenerationViaLevel3)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);

void BM_SubsetsMissingOne(benchmark::State& state) {
  std::vector<ItemId> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back(static_cast<ItemId>(i * 3));
  }
  Itemset s(items);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.SubsetsMissingOne());
  }
}
BENCHMARK(BM_SubsetsMissingOne)->Arg(3)->Arg(6)->Arg(10);

void BM_ItemsetUnion(benchmark::State& state) {
  Itemset a{1, 5, 9, 13};
  Itemset b{1, 5, 9, 17};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b));
  }
}
BENCHMARK(BM_ItemsetUnion);

void BM_ItemsetHash(benchmark::State& state) {
  Itemset s{3, 17, 255, 9001, 123456};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Hash());
  }
}
BENCHMARK(BM_ItemsetHash);

}  // namespace
}  // namespace corrmine

// Custom main (instead of BENCHMARK_MAIN) so the run ends with a
// BENCH_METRICS registry snapshot, like the harness-style benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  corrmine::bench::EmitMetricsLine("bench_candidate_gen");
  return 0;
}
