// Regenerates the paper's worked examples (1 through 5) with the library,
// printing computed vs published quantities side by side. The unit-test
// equivalents live in tests/paper_examples_test.cc; this harness exists so
// the numbers appear in bench_output.txt next to the tables.

#include "common/logging.h"

#include "bench_metrics.h"
#include <iostream>
#include <string>
#include <vector>

#include "core/chi_squared_test.h"
#include "core/interest.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "mining/association_rules.h"

namespace {

corrmine::TransactionDatabase FromCells(int both, int a_only, int b_only,
                                        int neither) {
  corrmine::TransactionDatabase db(2);
  auto add = [&db](int count, std::vector<corrmine::ItemId> basket) {
    for (int i = 0; i < count; ++i) {
      auto st = db.AddBasket(basket);
      CORRMINE_CHECK(st.ok());
    }
  };
  add(both, {0, 1});
  add(a_only, {0});
  add(b_only, {1});
  add(neither, {});
  return db;
}

}  // namespace

int main() {
  using namespace corrmine;
  io::TablePrinter table({"example", "quantity", "computed", "paper"});

  {  // Example 1: tea & coffee.
    auto db = FromCells(20, 5, 70, 5);
    ScanCountProvider provider(db);
    auto ct = ContingencyTable::Build(provider, Itemset{0, 1});
    CORRMINE_CHECK(ct.ok());
    auto pair = AnalyzePair(*ct);
    CORRMINE_CHECK(pair.ok());
    auto cells = ComputeCellInterests(*ct);
    table.AddRow({"1 tea/coffee", "support(t,c) %",
                  io::FormatPercent(pair->s_ab, 0), "20"});
    table.AddRow({"1 tea/coffee", "confidence t=>c",
                  io::FormatDouble(pair->a_to_b, 2), "0.80"});
    table.AddRow({"1 tea/coffee", "interest I(tc)",
                  io::FormatDouble(cells[0b11].interest, 2), "0.89"});
  }

  {  // Example 3: the 9-basket census sample.
    auto db = FromCells(1, 2, 4, 2);
    ScanCountProvider provider(db);
    auto ct = ContingencyTable::Build(provider, Itemset{0, 1});
    CORRMINE_CHECK(ct.ok());
    ChiSquaredResult chi2 = ComputeChiSquared(*ct);
    table.AddRow({"3 census 9 rows", "chi2",
                  io::FormatDouble(chi2.statistic, 3), "0.900"});
    table.AddRow({"3 census 9 rows", "significant at 95%",
                  chi2.SignificantAt(0.95) ? "yes" : "no", "no"});
  }

  {  // Examples 4-5: military service x age from Table 3's joint.
    const double n = 30370.0;
    auto count = [&](double pct) {
      return static_cast<int>(pct / 100.0 * n + 0.5);
    };
    auto db = FromCells(count(58.9), count(30.4), count(2.7), count(8.0));
    ScanCountProvider provider(db);
    auto ct = ContingencyTable::Build(provider, Itemset{0, 1});
    CORRMINE_CHECK(ct.ok());
    ChiSquaredResult chi2 = ComputeChiSquared(*ct);
    table.AddRow({"4 military/age", "chi2",
                  io::FormatDouble(chi2.statistic, 2), "2006.34"});
    table.AddRow({"4 military/age", "significant at 95%",
                  chi2.SignificantAt(0.95) ? "yes" : "no", "yes"});
    CellInterest major = MajorDependenceCell(*ct);
    table.AddRow({"5 military/age", "major dependence cell",
                  FormatCellPattern(ct->itemset(), major.mask),
                  "{veteran, over 40}"});
    auto cells = ComputeCellInterests(*ct);
    table.AddRow({"5 military/age", "I(veteran, <=40)",
                  io::FormatDouble(cells[0b10].interest, 2), "~0.44"});
  }

  {  // Example 2: confidence has no closure (coffee/tea/doughnut).
    TransactionDatabase db(3);
    auto add = [&db](int count, std::vector<ItemId> basket) {
      for (int i = 0; i < count; ++i) {
        auto st = db.AddBasket(basket);
        CORRMINE_CHECK(st.ok());
      }
    };
    add(8, {0, 1, 2});
    add(40, {0, 2});
    add(10, {0, 1});
    add(35, {0});
    add(2, {1, 2});
    add(5, {2});
    ScanCountProvider provider(db);
    double conf_c_d =
        static_cast<double>(provider.CountAllPresent(Itemset{0, 2})) /
        static_cast<double>(provider.CountAllPresent(Itemset{0}));
    double conf_ct_d =
        static_cast<double>(provider.CountAllPresent(Itemset{0, 1, 2})) /
        static_cast<double>(provider.CountAllPresent(Itemset{0, 1}));
    table.AddRow({"2 doughnuts", "confidence c=>d",
                  io::FormatDouble(conf_c_d, 2), "0.52"});
    table.AddRow({"2 doughnuts", "confidence c,t=>d",
                  io::FormatDouble(conf_ct_d, 2), "0.44"});
  }

  std::cout << "== Worked examples: computed vs paper ==\n\n";
  table.Print(std::cout);
  corrmine::bench::EmitMetricsLine("examples_paper");
  return 0;
}
