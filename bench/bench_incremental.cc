// Border repair vs. full re-mine on small deltas (DESIGN.md §11). The
// workload models the incremental-mining loop: a base dataset already
// mined (border snapshot + count memo in hand), then a delta batch of
// fresh baskets arrives. The "repair" side does what the live
// IncrementalMiner does — push the delta into the session's bitmaps in
// place, fold it into the memo (ApplyAppendedChunk, O(memo x delta)), and
// re-walk the lattice through the MemoCountProvider, so only
// never-before-seen queries touch the database. The "full" side does what
// a process that kept no state must do: rebuild the mining session over
// the combined window (shard deal + vertical index) and mine it from
// scratch. Assembling the combined row store happens outside both timers —
// neither side is billed for data the scenario hands them.
//
// Emits one "BENCH_JSON" line (the BENCH_incremental.json seed) consumed
// by tools/benchgate, which enforces the repair-speedup floor at <= 1%
// deltas, scaled to the machine's usable cores. The harness CHECK-fails if
// any repair result differs from the from-scratch bytes — the differential
// contract is part of the bench, not just the test suite.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "core/border_repair.h"
#include "core/border_state.h"
#include "core/chi_squared_miner.h"
#include "core/session.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TransactionDatabase Quest(uint64_t seed, uint64_t baskets) {
  // Deep and narrow on purpose: repair's advantage is skipped *counting*,
  // so the workload must be count-bound. Row count is the lever — counting
  // scales with words per bitmap while the per-level plan/generate/eval
  // costs (paid identically by both sides) scale with the candidate count,
  // which the modest item space keeps small.
  datagen::QuestOptions quest;
  quest.num_transactions = baskets;
  quest.num_items = 60;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 15;
  quest.seed = seed;
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok()) << db.status().ToString();
  return std::move(*db);
}

MinerOptions BenchMinerOptions(uint64_t num_baskets) {
  MinerOptions options;
  // Support floor proportional to the dataset so the lattice shape (and
  // with it the candidate count) stays comparable across sizes.
  options.support.min_count = num_baskets / 200;
  options.support.cell_fraction = 0.25;
  options.max_level = 3;
  return options;
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::string Fingerprint(const MiningResult& result) {
  std::string out;
  for (const CorrelationRule& rule : result.significant) {
    out += rule.itemset.ToString() + ':' +
           std::to_string(Bits(rule.chi2.statistic)) + ':' +
           std::to_string(Bits(rule.chi2.p_value)) + ';';
  }
  for (const LevelStats& level : result.levels) {
    out += std::to_string(level.candidates) + '/' +
           std::to_string(level.significant) + '/' +
           std::to_string(level.not_significant) + ';';
  }
  return out;
}

struct Run {
  double delta_fraction = 0.0;
  uint64_t base_baskets = 0;
  uint64_t delta_baskets = 0;
  double full_seconds = 0.0;
  double repair_seconds = 0.0;
  double speedup = 0.0;
  uint64_t memo_misses = 0;
};

Run MeasureDelta(const TransactionDatabase& base, double delta_fraction) {
  const uint64_t base_baskets = base.num_baskets();
  const uint64_t delta_baskets =
      std::max<uint64_t>(1, static_cast<uint64_t>(
                                base_baskets * delta_fraction));
  const MinerOptions options = BenchMinerOptions(base_baskets);

  // Prime the incremental side over the base rows: after this first
  // repair the memo holds every count the walk needs for the base window.
  SessionOptions session_options;
  auto inc = IncrementalMiner::Create(base, session_options, options);
  CORRMINE_CHECK(inc.ok()) << inc.status().ToString();
  CORRMINE_CHECK(inc->Repair().ok());
  const uint64_t misses_before =
      MetricsRegistry::Global().GetCounter("repair.memo_misses")->Value();

  TransactionDatabase delta = Quest(8888 + delta_baskets, delta_baskets);
  TransactionDatabase combined = base;
  for (size_t row = 0; row < delta.num_baskets(); ++row) {
    CORRMINE_CHECK(combined.AddBasket(delta.basket(row)).ok());
  }

  // Repair side: delta into session + memo in place, then re-walk.
  auto start = std::chrono::steady_clock::now();
  CORRMINE_CHECK(inc->Append(delta).ok());
  auto repaired = inc->Repair();
  CORRMINE_CHECK(repaired.ok()) << repaired.status().ToString();
  const double repair_seconds = SecondsSince(start);

  // Full side: rebuild the session over the combined window and mine.
  start = std::chrono::steady_clock::now();
  auto full_session =
      MiningSession::FromDatabase(combined, session_options);
  CORRMINE_CHECK(full_session.ok());
  auto full = full_session->Mine(options);
  const double full_seconds = SecondsSince(start);
  CORRMINE_CHECK(full.ok()) << full.status().ToString();

  CORRMINE_CHECK(Fingerprint(*repaired) == Fingerprint(*full))
      << "repair diverged from the from-scratch mine at delta fraction "
      << delta_fraction;

  Run run;
  run.delta_fraction = delta_fraction;
  run.base_baskets = base_baskets;
  run.delta_baskets = delta_baskets;
  run.full_seconds = full_seconds;
  run.repair_seconds = repair_seconds;
  run.speedup = repair_seconds > 0.0 ? full_seconds / repair_seconds : 0.0;
  run.memo_misses =
      MetricsRegistry::Global().GetCounter("repair.memo_misses")->Value() -
      misses_before;
  return run;
}

int Main() {
  const TransactionDatabase base = Quest(1997, 300000);
  std::vector<Run> runs;
  for (double fraction : {0.005, 0.01, 0.05}) {
    runs.push_back(MeasureDelta(base, fraction));
  }

  // Doubles go through FormatJsonNumber so the BENCH_incremental.json
  // seed never holds scientific notation.
  const auto num = [](double v) { return bench::FormatJsonNumber(v); };
  std::ostringstream fields;
  fields << "\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    if (i > 0) fields << ',';
    fields << "{\"delta_fraction\":" << num(run.delta_fraction)
           << ",\"base_baskets\":" << run.base_baskets
           << ",\"delta_baskets\":" << run.delta_baskets
           << ",\"full_seconds\":" << num(run.full_seconds)
           << ",\"repair_seconds\":" << num(run.repair_seconds)
           << ",\"speedup\":" << num(run.speedup)
           << ",\"memo_misses\":" << run.memo_misses << '}';
  }
  fields << ']';
  bench::EmitBenchJsonLine("bench_incremental", fields.str());

  io::TablePrinter table({"delta", "rows", "full s", "repair s", "speedup",
                          "memo misses"});
  for (const Run& run : runs) {
    std::ostringstream frac;
    frac << run.delta_fraction * 100 << "%";
    table.AddRow({frac.str(), std::to_string(run.delta_baskets),
                  io::FormatDouble(run.full_seconds, 4),
                  io::FormatDouble(run.repair_seconds, 4),
                  io::FormatDouble(run.speedup, 2),
                  std::to_string(run.memo_misses)});
  }
  table.Print(std::cout);
  bench::EmitMetricsLine("bench_incremental");
  return 0;
}

}  // namespace
}  // namespace corrmine

int main() { return corrmine::Main(); }
