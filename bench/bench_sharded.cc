// Counting throughput of the shard-native batch path against the scalar
// per-candidate submask stream the level-wise miner used before the batch
// API existed. The workload is one mining level's counting: every proper
// submask of every candidate must be answered (contingency tables need all
// 2^k cells). The old path issues one CountAllPresent per (candidate,
// submask); the new path deduplicates the level's submask queries — sibling
// candidates share almost all proper subsets — and answers them with a
// single CountAllPresentBatch against a ShardedCountProvider.
//
// Throughput is measured in *logical* counts/sec (per-candidate submask
// counts delivered), so both paths are scored on the same work product; the
// batch path's advantage is doing less physical counting for it. Emits one
// "BENCH_JSON " line (the BENCH_sharded.json seed), the human table, and
// the standard BENCH_METRICS tail.
//
// Determinism contract: every (shards, threads) configuration must deliver
// exactly the scalar baseline's counts; the harness CHECK-fails otherwise.

#include <chrono>

#include "bench_metrics.h"
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "datagen/quest_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"
#include "itemset/sharded_database.h"

namespace corrmine {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double SafeRatio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

/// The level's deduplicated query plan — the same shape the miner builds:
/// every proper non-empty submask of every candidate, each distinct itemset
/// queried once, with per-candidate rows of indices into the query list.
struct QueryPlan {
  std::vector<Itemset> queries;
  std::vector<uint32_t> rows;  // candidate-major, (2^k - 1) entries each
  uint32_t cells_per_candidate = 0;

  static QueryPlan Build(const std::vector<Itemset>& candidates, int level) {
    QueryPlan plan;
    plan.cells_per_candidate = (uint32_t{1} << level) - 1;
    std::unordered_map<Itemset, uint32_t, ItemsetHasher> index;
    plan.rows.reserve(candidates.size() * plan.cells_per_candidate);
    for (const Itemset& cand : candidates) {
      for (uint32_t mask = 1; mask < (uint32_t{1} << level); ++mask) {
        std::vector<ItemId> items;
        for (int j = 0; j < level; ++j) {
          if (mask & (uint32_t{1} << j)) items.push_back(cand.item(j));
        }
        Itemset subset(std::move(items));
        auto [it, inserted] =
            index.emplace(subset, static_cast<uint32_t>(plan.queries.size()));
        if (inserted) plan.queries.push_back(std::move(subset));
        plan.rows.push_back(it->second);
      }
    }
    return plan;
  }
};

struct Run {
  size_t shards;
  int threads;
  double seconds;
  double counts_per_sec;
};

}  // namespace
}  // namespace corrmine

int main() {
  using namespace corrmine;

  // Quest workload dense enough that level-3 candidates over the most
  // frequent items all have non-trivial counts.
  datagen::QuestOptions quest;
  quest.num_transactions = 8000;
  quest.num_items = 120;
  quest.avg_transaction_size = 10.0;
  quest.num_patterns = 40;
  auto db = datagen::GenerateQuestData(quest);
  CORRMINE_CHECK(db.ok());

  // One mining level's worth of candidates: every triple over the 40 most
  // frequent items (C(40,3) = 9880 candidates, 7 submask counts each).
  std::vector<std::pair<uint64_t, ItemId>> by_count;
  for (ItemId i = 0; i < db->num_items(); ++i) {
    by_count.emplace_back(db->ItemCount(i), i);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  constexpr size_t kTopItems = 40;
  std::vector<ItemId> top;
  for (size_t i = 0; i < kTopItems && i < by_count.size(); ++i) {
    top.push_back(by_count[i].second);
  }
  std::sort(top.begin(), top.end());

  constexpr int kLevel = 3;
  std::vector<Itemset> candidates;
  for (size_t a = 0; a < top.size(); ++a) {
    for (size_t b = a + 1; b < top.size(); ++b) {
      for (size_t c = b + 1; c < top.size(); ++c) {
        candidates.push_back(Itemset{top[a], top[b], top[c]});
      }
    }
  }
  QueryPlan plan = QueryPlan::Build(candidates, kLevel);
  const uint64_t logical_counts =
      static_cast<uint64_t>(candidates.size()) * plan.cells_per_candidate;

  // Baseline: the pre-batch hot path — one scalar CountAllPresent per
  // (candidate, submask), single shard, single thread, no deduplication.
  ShardedTransactionDatabase one_shard =
      ShardedTransactionDatabase::Partition(*db, 1);
  ShardedCountProvider baseline_provider(one_shard);
  std::vector<uint64_t> expected(logical_counts);
  // Best-of-N timing throughout: single runs are in the low milliseconds,
  // where scheduler noise swamps the signal; the minimum is the standard
  // jitter-robust estimator for a deterministic workload.
  constexpr int kReps = 5;
  double baseline_seconds = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto baseline_start = std::chrono::steady_clock::now();
    size_t slot = 0;
    for (const Itemset& cand : candidates) {
      for (uint32_t mask = 1; mask < (uint32_t{1} << kLevel); ++mask) {
        std::vector<ItemId> items;
        for (int j = 0; j < kLevel; ++j) {
          if (mask & (uint32_t{1} << j)) items.push_back(cand.item(j));
        }
        expected[slot++] = baseline_provider.CountAllPresent(
            Itemset(std::move(items)));
      }
    }
    double seconds = SecondsSince(baseline_start);
    if (rep == 0 || seconds < baseline_seconds) baseline_seconds = seconds;
  }
  double baseline_throughput =
      SafeRatio(static_cast<double>(logical_counts), baseline_seconds);

  // Batch path across the (shards x threads) grid. Each run re-times only
  // the counting (providers are built outside the clock, matching how a
  // session amortizes index construction across levels).
  std::vector<Run> runs;
  for (size_t shards : {1, 2, 4, 8}) {
    ShardedTransactionDatabase sharded =
        ShardedTransactionDatabase::Partition(*db, shards);
    ShardedCountProvider provider(sharded);
    for (int threads : {1, 8}) {
      std::unique_ptr<ThreadPool> pool;
      if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
      std::vector<uint64_t> query_counts(plan.queries.size());
      double seconds = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto start = std::chrono::steady_clock::now();
        provider.CountAllPresentBatch(plan.queries, query_counts, pool.get());
        double rep_seconds = SecondsSince(start);
        if (rep == 0 || rep_seconds < seconds) seconds = rep_seconds;
      }

      // Deliver (and verify) the logical per-candidate counts.
      for (size_t i = 0; i < plan.rows.size(); ++i) {
        CORRMINE_CHECK(query_counts[plan.rows[i]] == expected[i])
            << "shards " << shards << " threads " << threads
            << " diverged at logical count " << i;
      }
      runs.push_back(Run{shards, threads, seconds,
                         SafeRatio(static_cast<double>(logical_counts),
                                   seconds)});
    }
  }

  // Doubles go through FormatJsonNumber: a counts_per_sec seeded as
  // "9.06e+07" loses the exact value the next statsdiff compares against.
  const auto num = [](double v) { return bench::FormatJsonNumber(v); };
  std::ostringstream json;
  json << "\"workload\":\"quest\""
       << ",\"baskets\":" << db->num_baskets()
       << ",\"items\":" << static_cast<uint64_t>(db->num_items())
       << ",\"candidates\":" << candidates.size()
       << ",\"logical_counts\":" << logical_counts
       << ",\"deduped_queries\":" << plan.queries.size()
       << ",\"baseline\":{\"shards\":1,\"threads\":1,\"scalar\":true"
       << ",\"seconds\":" << num(baseline_seconds)
       << ",\"counts_per_sec\":" << num(baseline_throughput)
       << "},\"runs\":[";
  for (size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) json << ',';
    json << "{\"shards\":" << runs[i].shards
         << ",\"threads\":" << runs[i].threads
         << ",\"seconds\":" << num(runs[i].seconds)
         << ",\"counts_per_sec\":" << num(runs[i].counts_per_sec)
         << ",\"speedup\":"
         << num(SafeRatio(runs[i].counts_per_sec, baseline_throughput))
         << '}';
  }
  json << "]";
  bench::EmitBenchJsonLine("bench_sharded", json.str());

  io::TablePrinter table({"shards", "threads", "count s", "Mcounts/s",
                          "speedup"});
  table.AddRow({"1", "1 (scalar)", io::FormatDouble(baseline_seconds, 3),
                io::FormatDouble(baseline_throughput / 1e6, 2), "1.00"});
  for (const Run& run : runs) {
    table.AddRow({std::to_string(run.shards), std::to_string(run.threads),
                  io::FormatDouble(run.seconds, 3),
                  io::FormatDouble(run.counts_per_sec / 1e6, 2),
                  io::FormatDouble(
                      SafeRatio(run.counts_per_sec, baseline_throughput),
                      2)});
  }
  std::cout << "== Shard-native batch counting vs scalar stream (quest) =="
            << "\n\n";
  table.Print(std::cout);
  std::cout << "\n" << logical_counts << " logical counts per run, "
            << plan.queries.size()
            << " physical queries after per-level dedup ("
            << io::FormatDouble(
                   SafeRatio(static_cast<double>(logical_counts),
                             static_cast<double>(plan.queries.size())),
                   1)
            << "x shared).\n";
  corrmine::bench::EmitMetricsLine("bench_sharded");
  return 0;
}
