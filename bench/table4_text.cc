// Regenerates Table 4 of the paper: correlated word sets in a news corpus
// with their chi-squared values and the major dependence (the cell driving
// the correlation, split into words present / words absent). Runs the full
// chi-squared/support miner over the generated corpus up to triples, then
// prints headline pairs and the strongest minimal triples.

#include "common/logging.h"

#include "bench_metrics.h"
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/chi_squared_miner.h"
#include "core/fraction_estimator.h"
#include "core/interest.h"
#include "datagen/text_generator.h"
#include "io/table_printer.h"
#include "itemset/count_provider.h"

namespace {

std::string WordsOf(const corrmine::Itemset& s,
                    const corrmine::ItemDictionary& dict) {
  std::string out;
  for (corrmine::ItemId item : s) {
    if (!out.empty()) out += " ";
    auto name = dict.Name(item);
    out += name.ok() ? *name : ("w" + std::to_string(item));
  }
  return out;
}

// Splits a major-dependence cell into the words present / absent.
std::pair<std::string, std::string> SplitCell(
    const corrmine::Itemset& s, uint32_t mask,
    const corrmine::ItemDictionary& dict) {
  std::string includes, omits;
  for (size_t j = 0; j < s.size(); ++j) {
    auto name = dict.Name(s.item(j));
    std::string word = name.ok() ? *name : ("w" + std::to_string(s.item(j)));
    std::string& target = ((mask >> j) & 1) ? includes : omits;
    if (!target.empty()) target += " ";
    target += word;
  }
  return {includes, omits};
}

}  // namespace

int main() {
  using namespace corrmine;

  auto corpus = datagen::GenerateTextCorpus();
  CORRMINE_CHECK(corpus.ok()) << corpus.status().ToString();
  const TransactionDatabase& db = corpus->database;
  std::cout << "== Table 4: word correlations in the generated news corpus "
               "==\n"
            << "documents: " << db.num_baskets()
            << ", vocabulary after 10% document-frequency pruning: "
            << db.num_items() << " (paper: 91 docs, 416 words)\n\n";

  BitmapCountProvider provider(db);
  MinerOptions options;
  options.support.min_count = 5;
  options.support.cell_fraction = 0.25 + 1e-9;
  options.max_level = 3;
  // Section 3.3: cells with expected value below 1 are ignored — with
  // n = 91 and eight cells per triple, unmasked low-expectation corners
  // otherwise dominate the statistic.
  options.chi2.min_expected_cell = 1.0;
  auto result = MineCorrelations(provider, db.num_items(), options);
  CORRMINE_CHECK(result.ok()) << result.status().ToString();

  std::vector<const CorrelationRule*> pairs;
  std::vector<const CorrelationRule*> triples;
  for (const CorrelationRule& rule : result->significant) {
    (rule.itemset.size() == 2 ? pairs : triples).push_back(&rule);
  }
  auto by_chi2 = [](const CorrelationRule* a, const CorrelationRule* b) {
    return a->chi2.statistic > b->chi2.statistic;
  };
  std::sort(pairs.begin(), pairs.end(), by_chi2);
  std::sort(triples.begin(), triples.end(), by_chi2);

  io::TablePrinter table({"correlated words", "chi2", "major dep. includes",
                          "major dep. omits"});
  auto add_rules = [&](const std::vector<const CorrelationRule*>& rules,
                       size_t limit) {
    for (size_t i = 0; i < rules.size() && i < limit; ++i) {
      const CorrelationRule& rule = *rules[i];
      auto [includes, omits] =
          SplitCell(rule.itemset, rule.major_dependence.mask,
                    db.dictionary());
      table.AddRow({WordsOf(rule.itemset, db.dictionary()),
                    io::FormatDouble(rule.chi2.statistic, 3), includes,
                    omits});
    }
  };
  add_rules(pairs, 8);
  add_rules(triples, 6);
  table.Print(std::cout);

  // The paper's aggregate claims ("10% of all word pairs are correlated",
  // "more than 10% of all triples") checked by uniform sampling — the
  // triple space is too large to enumerate cheaply.
  for (int level = 2; level <= 3; ++level) {
    FractionEstimateOptions fraction_options;
    fraction_options.samples = 3000;
    fraction_options.chi2 = options.chi2;
    auto estimate = EstimateCorrelatedFraction(provider, db.num_items(),
                                               level, fraction_options);
    CORRMINE_CHECK(estimate.ok());
    std::cout << "\nestimated fraction of correlated size-" << level
              << " itemsets: "
              << io::FormatPercent(estimate->fraction, 1) << "% +- "
              << io::FormatPercent(2.0 * estimate->std_error, 1)
              << "% (paper: ~10% of pairs; >10% of triples)";
  }
  std::cout << "\n";

  size_t total_pairs =
      static_cast<size_t>(db.num_items()) * (db.num_items() - 1) / 2;
  std::cout << "\nminimal correlated pairs: " << pairs.size() << " of "
            << total_pairs << " ("
            << io::FormatPercent(
                   static_cast<double>(pairs.size()) /
                       static_cast<double>(total_pairs),
                   1)
            << "%; paper: 8329 of 86320 ~ 10%)\n";
  std::cout << "minimal correlated triples: " << triples.size() << "\n";
  if (!pairs.empty() && !triples.empty()) {
    std::cout << "max pair chi2 " << pairs[0]->chi2.statistic
              << " vs max triple chi2 " << triples[0]->chi2.statistic
              << " (paper: pairs up to 91.0, no minimal triple above 10)\n";
  }
  corrmine::bench::EmitMetricsLine("table4_text");
  return 0;
}
