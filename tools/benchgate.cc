// Scheduler bench-regression gate: reads the BENCH_JSON lines emitted by
// bench_parallel and bench_sharded, checks the parallel-scaling contract,
// and writes the merged BENCH_scheduler.json trajectory file.
//
// The thresholds are parallelism-aware because the contract is physical: a
// "3.0x at 8 threads" floor is only meaningful on a machine with at least 8
// usable cores. Below that the gate scales the requirement to the cores the
// process can actually run on (affinity- and cgroup-clamped, the same
// resolution `--threads 0` uses), bottoming out at "threads must not hurt"
// (>= 0.85x) on one core. Likewise the sharded-overhead check (a K-shard
// batch must stay within 10% of the monolithic layout at the same thread
// count) is enforced only for K <= usable cores — sharding past the core
// count is a known locality trade, not a scheduler regression; those runs
// are reported unenforced.
//
// Usage:
//   benchgate --out BENCH_scheduler.json parallel_out.txt sharded_out.txt
//
// Exit status: 0 when every enforced gate passes, 1 otherwise (and the
// failing gates are printed), 2 on usage/parse errors.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_metrics.h"
#include "common/thread_pool.h"
#include "io/json_reader.h"

namespace corrmine {
namespace {

constexpr char kBenchJsonPrefix[] = "BENCH_JSON ";

struct ParallelRun {
  int threads = 0;
  double seconds = 0.0;
  double speedup = 0.0;
};

struct ShardedRun {
  int shards = 0;
  int threads = 0;
  double seconds = 0.0;
};

struct IncrementalRun {
  double delta_fraction = 0.0;
  double full_seconds = 0.0;
  double repair_seconds = 0.0;
  double speedup = 0.0;
};

struct OutOfCoreRun {
  double budget_bytes = 0.0;
  double dataset_bytes = 0.0;
  double peak_rss_bytes = 0.0;
  double partitions = 0.0;
  double seconds = 0.0;
  double spilled_payload_bytes = 0.0;
  double spilled_encoded_bytes = 0.0;
  double pass1_speedup = 0.0;
  double admitted = 0.0;
};

struct Gate {
  std::string name;
  double required = 0.0;  // threshold in the gate's own unit
  double actual = 0.0;
  bool pass = false;
  bool enforced = true;  // unenforced gates are recorded but never fail
};

/// Required 8-thread speedup given the usable core count: the full 3.0x
/// contract at >= 8 cores, proportionally scaled below, floored at 0.85x
/// ("threads must not actively hurt") so the gate still means something on
/// a 1-core container.
double RequiredSpeedup(int usable_cores) {
  if (usable_cores >= 8) return 3.0;
  return std::max(0.85, 3.0 * static_cast<double>(usable_cores) / 8.0);
}

/// Ceiling on the observer-overhead ratios (traced/untraced and
/// profiled/unprofiled wall clock, each best-of-3 interleaved). The 1.05x
/// contract assumes enough cores that the collectors' bookkeeping hides in
/// idle cycles; on narrow machines (< 4 usable cores — e.g. a 1-core
/// container) every observer instruction competes with the miner for the
/// same core and scheduler jitter is proportionally larger, so the ceiling
/// relaxes to 1.15x rather than reporting noise as a regression.
double RequiredObserverOverhead(int usable_cores) {
  return usable_cores >= 4 ? 1.05 : 1.15;
}

/// Repair-speedup floor for <= 1% deltas. The advantage is memoized
/// counting, not parallelism, so it survives on one core — but a 1-core
/// box runs both sides serially and absorbs every fixed cost (plan build,
/// candidate generation) into a longer denominator-free repair, so the
/// floor is relaxed below the full 5.0x contract on narrow machines.
double RequiredRepairSpeedup(int usable_cores) {
  if (usable_cores >= 4) return 5.0;
  return usable_cores >= 2 ? 4.0 : 3.0;
}

/// Pass-1 (spill-overlapped partition mining) speedup floor for the
/// parallel out-of-core run vs. the forced-serial baseline. The pipeline
/// needs real cores to overlap anything: below 4 usable cores the
/// admission controller typically lands at 1-2 concurrent partitions and
/// the measurement is dominated by scheduler jitter, so the gate is
/// recorded report-only there (see the 1-core container note) and only
/// enforced at >= 4 cores.
constexpr double kRequiredPass1Speedup = 1.5;

/// Ceiling on the v2 spill compression ratio (encoded / raw payload
/// bytes). Core-independent: the delta-varint/run-length min-byte rule is
/// a property of the data, not the machine, and the bench corpus (sorted
/// quest rows) must compress to at most 0.7x of a v1 raw spill.
constexpr double kRequiredSpillRatio = 0.7;

double GetNumber(const io::JsonValue& obj, const char* key) {
  const io::JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : 0.0;
}

/// Extracts every BENCH_JSON payload from a bench binary's captured stdout.
StatusOr<std::vector<io::JsonValue>> ReadBenchLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open bench output: " + path);
  }
  std::vector<io::JsonValue> docs;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(kBenchJsonPrefix, 0) != 0) continue;
    CORRMINE_ASSIGN_OR_RETURN(
        io::JsonValue doc,
        io::ParseJson(line.substr(sizeof(kBenchJsonPrefix) - 1)));
    docs.push_back(std::move(doc));
  }
  if (docs.empty()) {
    return Status::InvalidArgument("no BENCH_JSON line in " + path);
  }
  return docs;
}

std::string FormatRatio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace
}  // namespace corrmine

int main(int argc, char** argv) {
  using namespace corrmine;

  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::cerr << "benchgate: unknown flag " << argv[i] << "\n";
      return 2;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: benchgate [--out BENCH_scheduler.json] "
                 "<bench_output.txt>...\n";
    return 2;
  }

  const int usable = ThreadPool::UsableHardwareConcurrency();
  // name -> best-of-3 overhead ratio from bench_parallel's observer blocks.
  std::map<std::string, double> observer_ratios;
  std::vector<ParallelRun> parallel_runs;
  std::vector<ShardedRun> sharded_runs;
  std::vector<IncrementalRun> incremental_runs;
  std::vector<OutOfCoreRun> outofcore_runs;
  for (const std::string& path : inputs) {
    auto docs = ReadBenchLines(path);
    if (!docs.ok()) {
      std::cerr << "benchgate: " << docs.status().ToString() << "\n";
      return 2;
    }
    for (const io::JsonValue& doc : *docs) {
      const io::JsonValue* bench = doc.Find("bench");
      const io::JsonValue* runs = doc.Find("runs");
      if (bench == nullptr || !bench->is_string() || runs == nullptr ||
          !runs->is_array()) {
        continue;
      }
      if (bench->string_value == "bench_parallel") {
        for (const io::JsonValue& run : runs->array) {
          parallel_runs.push_back(
              ParallelRun{static_cast<int>(GetNumber(run, "threads")),
                          GetNumber(run, "seconds"),
                          GetNumber(run, "speedup")});
        }
        // The observer-overhead blocks ride on the same BENCH_JSON line.
        for (const char* observer : {"trace", "profile"}) {
          const io::JsonValue* block = doc.Find(observer);
          if (block == nullptr || !block->is_object()) continue;
          double ratio = GetNumber(*block, "overhead_ratio");
          if (ratio > 0.0) observer_ratios[observer] = ratio;
        }
      } else if (bench->string_value == "bench_sharded") {
        for (const io::JsonValue& run : runs->array) {
          sharded_runs.push_back(
              ShardedRun{static_cast<int>(GetNumber(run, "shards")),
                         static_cast<int>(GetNumber(run, "threads")),
                         GetNumber(run, "seconds")});
        }
      } else if (bench->string_value == "bench_incremental") {
        for (const io::JsonValue& run : runs->array) {
          incremental_runs.push_back(
              IncrementalRun{GetNumber(run, "delta_fraction"),
                             GetNumber(run, "full_seconds"),
                             GetNumber(run, "repair_seconds"),
                             GetNumber(run, "speedup")});
        }
      } else if (bench->string_value == "bench_outofcore") {
        for (const io::JsonValue& run : runs->array) {
          outofcore_runs.push_back(
              OutOfCoreRun{GetNumber(run, "budget_bytes"),
                           GetNumber(run, "dataset_bytes"),
                           GetNumber(run, "peak_rss_bytes"),
                           GetNumber(run, "partitions"),
                           GetNumber(run, "seconds"),
                           GetNumber(run, "spilled_payload_bytes"),
                           GetNumber(run, "spilled_encoded_bytes"),
                           GetNumber(run, "pass1_speedup"),
                           GetNumber(run, "admitted")});
        }
      }
    }
  }

  std::vector<Gate> gates;
  // Single-bench invocations skip the scheduler contract (and vice
  // versa): each verify stage feeds benchgate the outputs it owns.
  const bool outofcore_mode =
      !outofcore_runs.empty() && parallel_runs.empty() &&
      sharded_runs.empty() && incremental_runs.empty();
  const bool incremental_mode =
      !incremental_runs.empty() && parallel_runs.empty() &&
      sharded_runs.empty() && outofcore_runs.empty();
  const bool scheduler_required = !incremental_mode && !outofcore_mode;

  // Gate 1: end-to-end miner speedup at the widest measured thread count.
  if (!parallel_runs.empty()) {
    const ParallelRun* widest = &parallel_runs.front();
    for (const ParallelRun& run : parallel_runs) {
      if (run.threads > widest->threads) widest = &run;
    }
    Gate gate;
    gate.name = "parallel_speedup_t" + std::to_string(widest->threads);
    gate.required = RequiredSpeedup(usable);
    gate.actual = widest->speedup;
    gate.pass = gate.actual >= gate.required;
    gates.push_back(gate);
  } else if (scheduler_required) {
    std::cerr << "benchgate: no bench_parallel runs found\n";
    return 2;
  }

  // Gate 1b: the observer contract — tracing and profiling are pure
  // observers, so turning them on must cost almost nothing. Enforced on
  // the same best-of-3 interleaved measurements bench_parallel already
  // takes; the ceiling is core-scaled (see RequiredObserverOverhead).
  for (const auto& [observer, ratio] : observer_ratios) {
    Gate gate;
    gate.name = observer + std::string("_overhead");
    gate.required = RequiredObserverOverhead(usable);
    gate.actual = ratio;
    gate.pass = gate.actual <= gate.required;
    gates.push_back(gate);
  }
  if (observer_ratios.empty() && scheduler_required) {
    std::cerr << "benchgate: no observer-overhead blocks in bench_parallel "
                 "output\n";
    return 2;
  }

  // Gate 2: sharded batch counting must stay within 10% of the monolithic
  // layout at the same thread count — enforced while K fits the cores.
  std::map<int, double> mono_seconds;  // threads -> shards=1 seconds
  for (const ShardedRun& run : sharded_runs) {
    if (run.shards == 1) mono_seconds[run.threads] = run.seconds;
  }
  for (const ShardedRun& run : sharded_runs) {
    if (run.shards <= 1) continue;
    auto mono = mono_seconds.find(run.threads);
    if (mono == mono_seconds.end() || mono->second <= 0.0) continue;
    Gate gate;
    gate.name = "sharded_overhead_k" + std::to_string(run.shards) + "_t" +
                std::to_string(run.threads);
    gate.required = 1.10;  // max allowed seconds ratio vs shards=1
    gate.actual = run.seconds / mono->second;
    gate.pass = gate.actual <= gate.required;
    gate.enforced = run.shards <= usable;
    gates.push_back(gate);
  }
  if (sharded_runs.empty() && scheduler_required) {
    std::cerr << "benchgate: no bench_sharded runs found\n";
    return 2;
  }

  // Gate 3: border repair vs. full re-mine — enforced for small (<= 1%)
  // deltas, where the memo should absorb nearly all counting. Larger
  // deltas are recorded unenforced: as the delta grows, repair converges
  // to a full mine by construction.
  for (const IncrementalRun& run : incremental_runs) {
    std::ostringstream name;
    name << "repair_speedup_d" << run.delta_fraction;
    Gate gate;
    gate.name = name.str();
    gate.required = RequiredRepairSpeedup(usable);
    gate.actual = run.speedup;
    gate.pass = gate.actual >= gate.required;
    gate.enforced = run.delta_fraction <= 0.0101;
    gates.push_back(gate);
  }

  // Gates 4+5: the out-of-core memory contract (DESIGN.md §12). Unlike
  // the speedup gates these are NOT core-scaled — a byte budget is a
  // machine-independent promise (RSS does not grow with parallelism the
  // way wall-clock shrinks), so a 1-core container enforces the same
  // 1.1x ceiling as a 64-core box. The companion gate pins the scenario
  // itself: the dataset's in-memory footprint must be >= 10x the budget,
  // or the RSS ceiling would be trivially satisfiable by loading
  // everything.
  for (size_t i = 0; i < outofcore_runs.size(); ++i) {
    const OutOfCoreRun& run = outofcore_runs[i];
    if (run.budget_bytes <= 0.0) continue;
    Gate rss;
    rss.name = "outofcore_rss_b" + std::to_string(i);
    rss.required = 1.10;  // max allowed peak-RSS / budget ratio
    rss.actual = run.peak_rss_bytes / run.budget_bytes;
    rss.pass = rss.actual <= rss.required;
    gates.push_back(rss);
    Gate overhang;
    overhang.name = "outofcore_dataset_b" + std::to_string(i);
    overhang.required = 10.0;  // min dataset / budget ratio
    overhang.actual = run.dataset_bytes / run.budget_bytes;
    overhang.pass = overhang.actual >= overhang.required;
    gates.push_back(overhang);
    // Gate 6: the v2 spill must beat a raw v1 spill by >= 30% on the
    // bench corpus. Core-independent — compression is about the data.
    if (run.spilled_payload_bytes > 0.0) {
      Gate ratio;
      ratio.name = "spill_ratio_b" + std::to_string(i);
      ratio.required = kRequiredSpillRatio;  // max encoded/raw bytes
      ratio.actual = run.spilled_encoded_bytes / run.spilled_payload_bytes;
      ratio.pass = ratio.actual <= ratio.required;
      gates.push_back(ratio);
    }
    // Gate 7: the pipelined pass-1 must beat the forced-serial baseline
    // — enforced only with enough cores to overlap anything (the 1-core
    // container records it report-only; threads=0 resolves to one worker
    // there and the "speedup" is pure noise around 1.0x).
    if (run.pass1_speedup > 0.0) {
      Gate scaling;
      scaling.name = "outofcore_scaling_b" + std::to_string(i);
      scaling.required = kRequiredPass1Speedup;
      scaling.actual = run.pass1_speedup;
      scaling.pass = scaling.actual >= scaling.required;
      scaling.enforced = usable >= 4;
      gates.push_back(scaling);
    }
  }

  bool all_pass = true;
  for (const Gate& gate : gates) {
    if (gate.enforced && !gate.pass) all_pass = false;
  }

  // BENCH_scheduler.json: the machine-readable trajectory record — the
  // environment the thresholds were resolved against, every gate with its
  // verdict, and the raw runs the verdicts came from. Every number goes
  // through FormatJsonNumber so byte counts seed the trajectory file as
  // exact integers, never scientific notation.
  const auto num = [](double v) { return bench::FormatJsonNumber(v); };
  std::ostringstream json;
  json << "{\"bench\":\""
       << (outofcore_mode
               ? "bench_outofcore"
               : (incremental_mode ? "bench_incremental" : "bench_scheduler"))
       << "\",\"usable_cores\":" << usable;
  if (scheduler_required) {
    json << ",\"required_speedup\":" << num(RequiredSpeedup(usable));
  }
  if (!observer_ratios.empty()) {
    json << ",\"required_observer_overhead\":"
         << num(RequiredObserverOverhead(usable));
  }
  if (!incremental_runs.empty()) {
    json << ",\"required_repair_speedup\":"
         << num(RequiredRepairSpeedup(usable));
  }
  if (!outofcore_runs.empty()) {
    json << ",\"required_rss_ratio\":1.1,\"required_dataset_ratio\":10"
         << ",\"required_spill_ratio\":" << num(kRequiredSpillRatio)
         << ",\"required_pass1_speedup\":" << num(kRequiredPass1Speedup);
  }
  json << ",\"pass\":" << (all_pass ? "true" : "false") << ",\"gates\":[";
  for (size_t i = 0; i < gates.size(); ++i) {
    const Gate& gate = gates[i];
    if (i > 0) json << ',';
    json << "{\"name\":\"" << gate.name
         << "\",\"required\":" << num(gate.required)
         << ",\"actual\":" << num(gate.actual)
         << ",\"pass\":" << (gate.pass ? "true" : "false")
         << ",\"enforced\":" << (gate.enforced ? "true" : "false") << '}';
  }
  json << "]";
  if (scheduler_required) {
    json << ",\"parallel_runs\":[";
    for (size_t i = 0; i < parallel_runs.size(); ++i) {
      if (i > 0) json << ',';
      json << "{\"threads\":" << parallel_runs[i].threads
           << ",\"seconds\":" << num(parallel_runs[i].seconds)
           << ",\"speedup\":" << num(parallel_runs[i].speedup) << '}';
    }
    json << "],\"sharded_runs\":[";
    for (size_t i = 0; i < sharded_runs.size(); ++i) {
      if (i > 0) json << ',';
      json << "{\"shards\":" << sharded_runs[i].shards
           << ",\"threads\":" << sharded_runs[i].threads
           << ",\"seconds\":" << num(sharded_runs[i].seconds) << '}';
    }
    json << "]";
  }
  if (!incremental_runs.empty()) {
    json << ",\"incremental_runs\":[";
    for (size_t i = 0; i < incremental_runs.size(); ++i) {
      const IncrementalRun& run = incremental_runs[i];
      if (i > 0) json << ',';
      json << "{\"delta_fraction\":" << num(run.delta_fraction)
           << ",\"full_seconds\":" << num(run.full_seconds)
           << ",\"repair_seconds\":" << num(run.repair_seconds)
           << ",\"speedup\":" << num(run.speedup) << '}';
    }
    json << "]";
  }
  if (!outofcore_runs.empty()) {
    json << ",\"outofcore_runs\":[";
    for (size_t i = 0; i < outofcore_runs.size(); ++i) {
      const OutOfCoreRun& run = outofcore_runs[i];
      if (i > 0) json << ',';
      json << "{\"budget_bytes\":" << num(run.budget_bytes)
           << ",\"dataset_bytes\":" << num(run.dataset_bytes)
           << ",\"peak_rss_bytes\":" << num(run.peak_rss_bytes)
           << ",\"partitions\":" << num(run.partitions)
           << ",\"seconds\":" << num(run.seconds)
           << ",\"spilled_payload_bytes\":" << num(run.spilled_payload_bytes)
           << ",\"spilled_encoded_bytes\":" << num(run.spilled_encoded_bytes)
           << ",\"pass1_speedup\":" << num(run.pass1_speedup)
           << ",\"admitted\":" << num(run.admitted) << '}';
    }
    json << "]";
  }
  json << "}";

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    out << json.str() << "\n";
    if (!out) {
      std::cerr << "benchgate: cannot write " << out_path << "\n";
      return 2;
    }
  }

  if (outofcore_mode) {
    std::cout << "benchgate: " << usable
              << " usable core(s); memory and compression gates are "
                 "core-independent (peak RSS <= 1.1x budget, dataset >= "
                 "10x budget, spill <= 0.7x raw); pass-1 scaling "
              << (usable >= 4 ? "enforced" : "report-only") << "\n";
  } else {
    std::cout << "benchgate: " << usable << " usable core(s), required "
              << FormatRatio(incremental_mode ? RequiredRepairSpeedup(usable)
                                              : RequiredSpeedup(usable))
              << "x speedup\n";
  }
  for (const Gate& gate : gates) {
    std::cout << "  [" << (gate.pass ? "PASS" : (gate.enforced ? "FAIL"
                                                               : "info"))
              << "] " << gate.name << ": " << FormatRatio(gate.actual)
              << " vs " << FormatRatio(gate.required)
              << (gate.enforced ? "" : " (not enforced)") << "\n";
  }
  std::cout << (all_pass ? "benchgate: OK\n" : "benchgate: FAILED\n");
  return all_pass ? 0 : 1;
}
