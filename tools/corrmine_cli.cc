// Command-line front end: mine correlation rules (or the support-confidence
// baseline) from a transaction file, or from a built-in generated dataset.
//
// Usage:
//   corrmine_cli mine <file> [--support-count N] [--cell-fraction P]
//                            [--confidence-level A] [--max-level L]
//                            [--min-expected E] [--algo levelwise|walk]
//   corrmine_cli rules <file> [--min-support F] [--min-confidence C]
//   corrmine_cli generate quest|census|text [--out FILE] [--seed S]
//                            [--baskets N]
//   corrmine_cli --help
//
// Transaction files: one basket per line, whitespace-separated integer
// item ids ('#' starts a comment line), or the CMB1 binary encoding —
// readers auto-detect. mine/rules/check all route through MiningSession,
// which owns the (optionally sharded) dataset, the counting provider, and
// the thread pool.

#include <algorithm>
#include <iostream>
#include <optional>
#include <string>

#include "common/flags.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/border_repair.h"
#include "core/border_state.h"
#include "core/interest.h"
#include "core/report.h"
#include "core/session.h"
#include "datagen/census_generator.h"
#include "datagen/quest_generator.h"
#include "datagen/text_generator.h"
#include "io/binary_io.h"
#include "io/chunked_io.h"
#include "io/format_detect.h"
#include "io/sharded_loader.h"
#include "itemset/kernels.h"
#include "io/csv.h"
#include "io/result_io.h"
#include "io/stats_json.h"
#include "io/table_printer.h"
#include "io/transaction_io.h"
#include "mining/association_rules.h"
#include "mining/categorical_miner.h"
#include "mining/partition.h"
#include "stats/permutation_test.h"

namespace corrmine {
namespace {

constexpr char kUsage[] =
    "corrmine_cli — correlation-rule mining (Brin/Motwani/Silverstein '97)\n"
    "\n"
    "commands:\n"
    "  mine <file>      mine minimal correlated itemsets\n"
    "      --names                baskets are word tokens, not integer ids\n"
    "      --support-count N      cell support count s (default 3)\n"
    "      --cell-fraction P      supported-cell fraction p (default 0.26)\n"
    "      --confidence-level A   chi2 significance level (default 0.95)\n"
    "      --max-level L          stop after itemsets of size L (0 = off)\n"
    "      --min-expected E       ignore cells with expectation < E\n"
    "      --threads T            worker threads for candidate evaluation\n"
    "                             (default 1; 0 = one per hardware thread;\n"
    "                             output is identical for any T)\n"
    "      --shards K             partition the dataset into K shards and\n"
    "                             count per shard (default 1; 0 = one per\n"
    "                             hardware thread; output is identical for\n"
    "                             any K — see DESIGN.md §7)\n"
    "      --prefix-cache         memoize prefix bitmap intersections\n"
    "                             (same counts, fewer AND operations;\n"
    "                             requires --shards 1 and the bitmap\n"
    "                             provider)\n"
    "      --provider NAME        counting strategy: bitmap (default,\n"
    "                             per-shard uncompressed bitmap indexes),\n"
    "                             compressed (hybrid array/bitmap/run\n"
    "                             counting columns — memory tracks\n"
    "                             occupancy, not the item x basket\n"
    "                             rectangle), or scan (no index; re-scan\n"
    "                             the row store per level). Mined output\n"
    "                             is byte-identical for every provider\n"
    "      --out-of-core          never load the dataset: stream it into\n"
    "                             RAM-sized compressed CCS spill\n"
    "                             partitions, pipeline the partition\n"
    "                             mines with the spill under a\n"
    "                             budget-aware admission controller, then\n"
    "                             verify exact counts in one streaming\n"
    "                             pass (DESIGN.md §12). Output is\n"
    "                             byte-identical to the in-memory mine;\n"
    "                             honors --threads and the mining flags,\n"
    "                             excludes --provider/--shards/--names/\n"
    "                             --prefix-cache/--resume-from/--append\n"
    "      --memory-budget B      out-of-core resident-set target in bytes\n"
    "                             (default 268435456); partitions are\n"
    "                             sized so peak RSS stays near it\n"
    "      --partition-budget B   bytes of basket rows per spill partition\n"
    "                             (default memory-budget/6, min 1 MiB).\n"
    "                             Must not exceed --memory-budget; the\n"
    "                             admission controller runs about\n"
    "                             memory-budget / (2 x partition-budget)\n"
    "                             partition mines concurrently, so setting\n"
    "                             it equal to --memory-budget forces\n"
    "                             serial (admitted = 1) mining\n"
    "      --spill-dir DIR        out-of-core partition directory\n"
    "                             (default <file>.spill, removed after\n"
    "                             the run unless --keep-spill)\n"
    "      --keep-spill           leave the CCS partition files on disk\n"
    "      --kernel NAME          counting kernel: auto (default), scalar,\n"
    "                             avx2, avx512, or neon. auto picks the\n"
    "                             fastest kernel this CPU supports; a forced\n"
    "                             kernel must be compiled in and supported.\n"
    "                             The CORRMINE_KERNEL env var sets the same\n"
    "                             choice; the flag wins when both are given.\n"
    "                             Counts and mined output are identical for\n"
    "                             every kernel — only throughput changes\n"
    "      --algo levelwise|walk  search strategy (default levelwise)\n"
    "      --walks N              random walks when --algo walk\n"
    "      --resume-from SNAP     load a border snapshot (CBS1) and repair\n"
    "                             it against the file's current contents —\n"
    "                             the mined output is byte-identical to a\n"
    "                             from-scratch mine, but counting only\n"
    "                             touches rows the snapshot has not seen.\n"
    "                             Mining flags are taken from the snapshot,\n"
    "                             not the command line; tail chunks appended\n"
    "                             to the file since the snapshot are folded\n"
    "                             in automatically\n"
    "      --append FILE          append FILE's baskets to the in-memory\n"
    "                             session before mining (with --resume-from:\n"
    "                             delta repair without touching the input\n"
    "                             file). Not available with --names\n"
    "      --border-out SNAP      write the border snapshot after mining —\n"
    "                             the input to a later --resume-from\n"
    "      --out FILE             also write the result in the line format\n"
    "      --stats-json FILE      write run statistics as JSON (schema\n"
    "                             corrmine-stats-v1: a \"deterministic\"\n"
    "                             section identical for any --threads, and\n"
    "                             a \"runtime\" metrics snapshot)\n"
    "      --stats                print the metrics report to stderr\n"
    "      --trace-out FILE       record execution trace events (span\n"
    "                             begin/end per run, level, shard batch,\n"
    "                             pool task) and write them as Chrome\n"
    "                             Trace Event Format JSON — open in\n"
    "                             Perfetto (ui.perfetto.dev) or\n"
    "                             chrome://tracing. Mined output and the\n"
    "                             deterministic stats section are\n"
    "                             byte-identical with or without tracing\n"
    "      --pmu                  attribute hardware counters (cycles, IPC,\n"
    "                             LLC and branch miss rates) to mining\n"
    "                             phases via perf_event_open; the breakdown\n"
    "                             lands in the stats-JSON \"profile\"\n"
    "                             section. Degrades gracefully where the\n"
    "                             syscall is denied (containers, VMs):\n"
    "                             pmu.available:false plus a reason, never\n"
    "                             an error\n"
    "      --profile-out FILE     sample stacks at ~1 kHz of CPU time\n"
    "                             (SIGPROF) and write a collapsed-stack\n"
    "                             profile — feed to flamegraph.pl, or\n"
    "                             `sort | head` for a quick hot-path view.\n"
    "                             Combines with --trace-out (samples appear\n"
    "                             as instant events on the timeline).\n"
    "                             Mined output and the deterministic stats\n"
    "                             section are byte-identical with or\n"
    "                             without profiling\n"
    "      --progress             heartbeat to stderr after each completed\n"
    "                             lattice level (candidates, frontier,\n"
    "                             significant total, elapsed seconds)\n"
    "      --report               render the analyst report instead of the\n"
    "                             raw rule table (honors --fdr)\n"
    "      --fdr Q                Benjamini-Hochberg FDR filter level\n"
    "  check <file>     test one itemset exactly (Monte Carlo permutation)\n"
    "      --items A,B[,C...]     item ids to test (required)\n"
    "      --rounds N             permutation rounds (default 1000)\n"
    "      --shards K             load-time sharding (default 1; 0 = auto)\n"
    "  rules <file>     support-confidence association rules (baseline)\n"
    "      --min-support F        support fraction (default 0.01)\n"
    "      --min-confidence C     confidence cutoff (default 0.5)\n"
    "      --algo apriori|eclat   frequent-itemset miner (default apriori)\n"
    "      --threads T            worker threads (default 1; 0 = auto)\n"
    "      --shards K             dataset shards (default 1; 0 = auto)\n"
    "  dependencies <csv>  chi-squared dependencies between multi-valued\n"
    "                      attributes (CSV: header + label rows)\n"
    "      --confidence-level A   significance level (default 0.95)\n"
    "      --min-expected E       ignore cells with expectation < E\n"
    "  ingest <file>    maintain a chunked binary transaction file\n"
    "      --append DELTA         append DELTA's baskets as a new tail\n"
    "                             chunk (DELTA may be text or binary; a\n"
    "                             text base file is converted to binary\n"
    "                             in place first)\n"
    "      --retire N             drop the N oldest chunks — sliding-window\n"
    "                             retirement; the file may not become empty\n"
    "                             With neither flag, prints the chunk layout\n"
    "  generate <kind>  write a synthetic dataset (quest|census|text)\n"
    "      --out FILE             output path (default <kind>.txt)\n"
    "      --baskets N            override basket count\n"
    "      --seed S               generator seed\n"
    "      --format text|binary   output encoding (readers auto-detect)\n";

/// Session knobs shared by mine/rules/check: --threads and --shards follow
/// the same convention (default 1, 0 = one per hardware thread).
StatusOr<SessionOptions> SessionOptionsFromFlags(const FlagParser& flags) {
  SessionOptions options;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t threads, flags.GetUint64("threads", 1));
  options.num_threads = static_cast<int>(threads);
  CORRMINE_ASSIGN_OR_RETURN(uint64_t shards, flags.GetUint64("shards", 1));
  options.num_shards = static_cast<int>(shards);
  options.prefix_cache = flags.GetBool("prefix-cache", false);
  options.named_items = flags.GetBool("names", false);
  const std::string provider = flags.GetString("provider", "bitmap");
  if (provider == "bitmap") {
    options.provider = SessionProvider::kBitmap;
  } else if (provider == "compressed") {
    options.provider = SessionProvider::kCompressed;
  } else if (provider == "scan") {
    options.provider = SessionProvider::kScan;
  } else {
    return Status::InvalidArgument(
        "unknown --provider: " + provider +
        " (expected bitmap, compressed, or scan)");
  }
  return options;
}

/// Mining knobs shared by the in-memory and out-of-core mine paths.
StatusOr<MinerOptions> MinerOptionsFromFlags(const FlagParser& flags) {
  MinerOptions options;
  CORRMINE_ASSIGN_OR_RETURN(options.support.min_count,
                            flags.GetUint64("support-count", 3));
  CORRMINE_ASSIGN_OR_RETURN(options.support.cell_fraction,
                            flags.GetDouble("cell-fraction", 0.26));
  CORRMINE_ASSIGN_OR_RETURN(options.confidence_level,
                            flags.GetDouble("confidence-level", 0.95));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t max_level,
                            flags.GetUint64("max-level", 0));
  options.max_level = static_cast<int>(max_level);
  CORRMINE_ASSIGN_OR_RETURN(options.chi2.min_expected_cell,
                            flags.GetDouble("min-expected", 0.0));
  if (flags.GetBool("progress", false)) {
    // Heartbeat on the coordinating thread after each completed level; goes
    // to stderr so piped stdout (tables, reports) stays clean.
    options.progress = [](const MinerProgress& p) {
      std::cerr << "[progress] level " << p.level << ": candidates "
                << p.candidates << ", frontier " << p.frontier
                << ", significant " << p.significant_total << ", elapsed "
                << io::FormatDouble(p.elapsed_seconds, 2) << "s\n";
    };
  }
  return options;
}

/// Renders a mining result — the report or the rule table plus per-level
/// lines — and honors --out. `dict` may be null (out-of-core runs have no
/// session to borrow a dictionary from).
Status PrintMineResult(const FlagParser& flags, const MiningResult& result,
                       const ItemDictionary* dict) {
  if (flags.GetBool("report", false)) {
    ReportOptions report_options;
    CORRMINE_ASSIGN_OR_RETURN(report_options.fdr_level,
                              flags.GetDouble("fdr", 0.0));
    std::cout << RenderReport(result, dict, report_options);
  } else {
    io::TablePrinter table({"itemset", "chi2", "p-value",
                            "major dependence", "interest"});
    for (const CorrelationRule& rule : result.significant) {
      table.AddRow({rule.itemset.ToString(),
                    io::FormatDouble(rule.chi2.statistic, 3),
                    io::FormatDouble(rule.chi2.p_value, 6),
                    FormatCellPattern(rule.itemset,
                                      rule.major_dependence.mask, dict),
                    io::FormatDouble(rule.major_dependence.interest, 3)});
    }
    table.Print(std::cout);
    for (const LevelStats& level : result.levels) {
      std::cout << "level " << level.level << ": |CAND| "
                << level.candidates << ", discards " << level.discards
                << ", |SIG| " << level.significant << ", |NOTSIG| "
                << level.not_significant << "\n";
    }
  }
  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    CORRMINE_RETURN_NOT_OK(io::WriteMiningResult(result, out));
    std::cout << "result written to " << out << "\n";
  }
  return Status::OK();
}

/// Honors --stats-json/--stats against `registry`. `cached` may be null.
Status EmitMineStats(const FlagParser& flags, const MiningResult& result,
                     const CachedCountProvider* cached,
                     MetricsRegistry& registry) {
  std::string stats_path = flags.GetString("stats-json", "");
  bool print_stats = flags.GetBool("stats", false);
  if (stats_path.empty() && !print_stats) return Status::OK();
  CachedCountProvider::CacheStats cache_stats;
  if (cached) {
    cache_stats = cached->stats();
    cached->PublishMetrics(&registry);
  }
  if (!stats_path.empty()) {
    CORRMINE_RETURN_NOT_OK(WriteStatsJson(
        stats_path,
        RenderStatsJson(result, cached ? &cache_stats : nullptr, registry)));
    std::cout << "stats written to " << stats_path << "\n";
  }
  if (print_stats) std::cerr << registry.DumpMetrics();
  return Status::OK();
}

/// Starts the tracer when --trace-out was given; the returned guard stops
/// tracing and writes the Chrome-format file when it leaves scope (so the
/// trace is flushed even on early error returns). Under CORRMINE_METRICS=OFF
/// the tracer never activates and the file holds a valid empty trace.
class TraceOutGuard {
 public:
  explicit TraceOutGuard(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) Tracer::Global().Start();
  }
  ~TraceOutGuard() {
    if (path_.empty()) return;
    Tracer& tracer = Tracer::Global();
    tracer.Stop();
    Status status = tracer.WriteChromeJson(path_);
    if (status.ok()) {
      std::cout << "trace written to " << path_ << "\n";
    } else {
      std::cerr << "trace write failed: " << status.ToString() << "\n";
    }
  }
  TraceOutGuard(const TraceOutGuard&) = delete;
  TraceOutGuard& operator=(const TraceOutGuard&) = delete;

 private:
  std::string path_;
};

/// Starts the profiler when --pmu and/or --profile-out were given; stops
/// it and writes the collapsed-stack file when it leaves scope. Construct
/// AFTER TraceOutGuard so sampling stops (and its instant events are all
/// in the rings) before the trace is exported. A denied PMU prints a
/// one-line notice — the run itself is never affected.
class ProfileOutGuard {
 public:
  ProfileOutGuard(std::string profile_path, bool pmu)
      : path_(std::move(profile_path)), enabled_(pmu || !path_.empty()) {
    if (!enabled_) return;
    ProfilerOptions options;
    options.pmu = pmu;
    options.sampling = !path_.empty();
    if (pmu && !ProbePmu().available) {
      std::cerr << "[pmu] unavailable: " << ProbePmu().reason << "\n";
    }
    Profiler::Global().Start(options);
  }
  ~ProfileOutGuard() {
    if (!enabled_) return;
    Profiler& profiler = Profiler::Global();
    profiler.Stop();
    if (path_.empty()) return;
    Status status = profiler.WriteCollapsedStacks(path_);
    if (status.ok()) {
      std::cout << "profile written to " << path_ << "\n";
    } else {
      std::cerr << "profile write failed: " << status.ToString() << "\n";
    }
  }
  ProfileOutGuard(const ProfileOutGuard&) = delete;
  ProfileOutGuard& operator=(const ProfileOutGuard&) = delete;

 private:
  std::string path_;
  bool enabled_ = false;
};

/// The --out-of-core mine path: never loads the dataset; streams it into
/// CCS1 spill partitions under the --memory-budget and runs the two-pass
/// partition miner (mining/partition.h). Output is byte-identical to the
/// in-memory mine of the same file with the same mining flags.
Status RunMineOutOfCore(const FlagParser& flags) {
  TraceOutGuard trace_guard(flags.GetString("trace-out", ""));
  ProfileOutGuard profile_guard(flags.GetString("profile-out", ""),
                                flags.GetBool("pmu", false));
  for (const char* incompatible :
       {"names", "prefix-cache", "resume-from", "append", "border-out",
        "provider", "shards"}) {
    if (flags.HasFlag(incompatible)) {
      return Status::InvalidArgument(
          std::string("--out-of-core cannot be combined with --") +
          incompatible);
    }
  }
  if (flags.GetString("algo", "levelwise") != "levelwise") {
    return Status::InvalidArgument("--out-of-core requires --algo levelwise");
  }
  OutOfCoreMinerOptions options;
  CORRMINE_ASSIGN_OR_RETURN(options.miner, MinerOptionsFromFlags(flags));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t threads, flags.GetUint64("threads", 1));
  options.miner.num_threads = static_cast<int>(threads);
  CORRMINE_ASSIGN_OR_RETURN(
      options.memory_budget_bytes,
      flags.GetUint64("memory-budget", uint64_t{256} << 20));
  CORRMINE_ASSIGN_OR_RETURN(options.partition_budget_bytes,
                            flags.GetUint64("partition-budget", 0));
  if (options.partition_budget_bytes > options.memory_budget_bytes) {
    return Status::InvalidArgument(
        "--partition-budget must not exceed --memory-budget");
  }
  options.spill_dir = flags.GetString("spill-dir", "");
  options.keep_spill = flags.GetBool("keep-spill", false);

  OutOfCoreStats stats;
  CORRMINE_ASSIGN_OR_RETURN(
      MiningResult result,
      MineCorrelationsOutOfCore(flags.positional()[1], options, &stats));
  std::cerr << "[out-of-core] " << stats.num_baskets << " baskets, "
            << stats.num_items << " items, " << stats.partitions
            << " partitions (admitted " << stats.admitted << "), "
            << stats.candidate_queries << " candidate queries, "
            << stats.memo_misses << " memo misses, spill "
            << stats.spilled_encoded_bytes << "/"
            << stats.spilled_payload_bytes << " bytes\n";
  CORRMINE_RETURN_NOT_OK(PrintMineResult(flags, result, nullptr));
  return EmitMineStats(flags, result, nullptr, MetricsRegistry::Global());
}

Status RunMine(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("mine: missing transaction file");
  }
  if (flags.GetBool("out-of-core", false)) {
    return RunMineOutOfCore(flags);
  }
  TraceOutGuard trace_guard(flags.GetString("trace-out", ""));
  ProfileOutGuard profile_guard(flags.GetString("profile-out", ""),
                                flags.GetBool("pmu", false));
  CORRMINE_ASSIGN_OR_RETURN(SessionOptions session_options,
                            SessionOptionsFromFlags(flags));
  CORRMINE_ASSIGN_OR_RETURN(
      MiningSession session,
      MiningSession::Open(flags.positional()[1], session_options));
  if (session.num_baskets() == 0) {
    return Status::InvalidArgument("no baskets in input");
  }

  CORRMINE_ASSIGN_OR_RETURN(MinerOptions options,
                            MinerOptionsFromFlags(flags));

  const std::string resume_path = flags.GetString("resume-from", "");
  const std::string append_path = flags.GetString("append", "");
  const std::string border_out = flags.GetString("border-out", "");
  std::string algo = flags.GetString("algo", "levelwise");
  if ((!resume_path.empty() || !border_out.empty()) && algo != "levelwise") {
    return Status::InvalidArgument(
        "--resume-from/--border-out require --algo levelwise");
  }

  std::optional<BorderState> state;
  if (!resume_path.empty()) {
    CORRMINE_ASSIGN_OR_RETURN(BorderState loaded,
                              LoadBorderState(resume_path));
    state.emplace(std::move(loaded));
    if (session.num_baskets() < state->num_baskets) {
      return Status::FailedPrecondition(
          "input has " + std::to_string(session.num_baskets()) +
          " baskets but the snapshot covers " +
          std::to_string(state->num_baskets) +
          " — after retiring chunks, re-mine with --border-out instead of "
          "resuming");
    }
    if (session.num_baskets() > state->num_baskets) {
      // Rows past the snapshot's coverage are tail chunks appended since it
      // was written (ingest --append): fold them into the memo so the
      // repair only ever re-counts the delta.
      TransactionDatabase flat = session.Flatten();
      TransactionDatabase tail(flat.num_items());
      for (size_t row = state->num_baskets; row < flat.num_baskets();
           ++row) {
        CORRMINE_RETURN_NOT_OK(tail.AddBasket(flat.basket(row)));
      }
      CORRMINE_RETURN_NOT_OK(ApplyAppendedChunk(&*state, tail));
      std::cerr << "[repair] folded " << tail.num_baskets()
                << " appended baskets from the input file into the "
                   "snapshot\n";
    }
  }
  if (!append_path.empty()) {
    if (session_options.named_items) {
      return Status::InvalidArgument(
          "--append is id-based and cannot be combined with --names (the "
          "delta's token->id mapping would not match the session's)");
    }
    CORRMINE_ASSIGN_OR_RETURN(TransactionDatabase delta,
                              io::LoadTransactionFile(append_path));
    CORRMINE_RETURN_NOT_OK(session.AppendBatch(delta));
    if (state) CORRMINE_RETURN_NOT_OK(ApplyAppendedChunk(&*state, delta));
  }

  MiningResult result;
  if (state || !border_out.empty()) {
    if (!state) {
      // Fresh snapshot: the first repair over an empty memo is exactly a
      // full mine, and it leaves the memo primed for later resumes.
      state.emplace();
      state->num_items = session.num_items();
      state->num_baskets = session.num_baskets();
      state->item_names = session.dictionary().names();
      state->config = BorderMinerConfig::FromMinerOptions(options);
    }
    CORRMINE_ASSIGN_OR_RETURN(result, RepairBorder(session, &*state));
  } else if (algo == "levelwise") {
    CORRMINE_ASSIGN_OR_RETURN(result, session.Mine(options));
  } else if (algo == "walk") {
    RandomWalkOptions walk;
    walk.miner = options;
    CORRMINE_ASSIGN_OR_RETURN(uint64_t walks,
                              flags.GetUint64("walks", 1000));
    walk.num_walks = static_cast<int>(walks);
    CORRMINE_ASSIGN_OR_RETURN(result, session.MineRandomWalk(walk));
  } else {
    return Status::InvalidArgument("unknown --algo: " + algo);
  }

  CORRMINE_RETURN_NOT_OK(
      PrintMineResult(flags, result, &session.dictionary()));
  if (!border_out.empty()) {
    CORRMINE_RETURN_NOT_OK(SaveBorderState(*state, border_out));
    std::cout << "border snapshot written to " << border_out << " ("
              << state->counts.size() << " memoized counts)\n";
  }

  return EmitMineStats(flags, result, session.cache(), session.metrics());
}

Status RunDependencies(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("dependencies: missing CSV file");
  }
  CORRMINE_ASSIGN_OR_RETURN(CategoricalDatabase db,
                            io::ReadCategoricalCsv(flags.positional()[1]));
  CategoricalMinerOptions options;
  CORRMINE_ASSIGN_OR_RETURN(options.confidence_level,
                            flags.GetDouble("confidence-level", 0.95));
  CORRMINE_ASSIGN_OR_RETURN(options.min_expected_cell,
                            flags.GetDouble("min-expected", 0.0));
  CORRMINE_ASSIGN_OR_RETURN(auto deps,
                            MineCategoricalDependencies(db, options));
  io::TablePrinter table({"attribute a", "attribute b", "chi2", "dof",
                          "p-value", "Cramer V", "dominant cells",
                          "interest"});
  for (const CategoricalDependency& dep : deps) {
    const auto& a = db.attribute(dep.attribute_a);
    const auto& b = db.attribute(dep.attribute_b);
    table.AddRow({a.name, b.name, io::FormatDouble(dep.chi_squared, 2),
                  std::to_string(dep.dof),
                  io::FormatDouble(dep.p_value, 6),
                  io::FormatDouble(dep.cramers_v, 3),
                  a.categories[dep.dominant_category_a] + " x " +
                      b.categories[dep.dominant_category_b],
                  io::FormatDouble(dep.dominant_interest, 3)});
  }
  table.Print(std::cout);
  std::cout << deps.size() << " significant dependencies over "
            << db.num_rows() << " rows\n";
  return Status::OK();
}

Status RunCheck(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("check: missing transaction file");
  }
  CORRMINE_ASSIGN_OR_RETURN(SessionOptions session_options,
                            SessionOptionsFromFlags(flags));
  CORRMINE_ASSIGN_OR_RETURN(
      MiningSession session,
      MiningSession::Open(flags.positional()[1], session_options));
  // The permutation test shuffles a contiguous row store; reassemble it in
  // original basket order from the session's shards.
  TransactionDatabase db = session.Flatten();
  std::string items_arg = flags.GetString("items", "");
  if (items_arg.empty()) {
    return Status::InvalidArgument("check: --items A,B[,C...] is required");
  }
  std::vector<ItemId> items;
  for (std::string_view token : SplitString(items_arg, ",")) {
    CORRMINE_ASSIGN_OR_RETURN(uint64_t id, ParseUint64(TrimString(token)));
    if (id >= db.num_items()) {
      return Status::OutOfRange("item id " + std::to_string(id) +
                                " outside the database's item space");
    }
    items.push_back(static_cast<ItemId>(id));
  }
  Itemset s(std::move(items));

  stats::PermutationTestOptions options;
  CORRMINE_ASSIGN_OR_RETURN(uint64_t rounds,
                            flags.GetUint64("rounds", 1000));
  options.rounds = static_cast<int>(rounds);
  CORRMINE_ASSIGN_OR_RETURN(
      auto result, stats::PermutationIndependenceTest(db, s, options));
  std::cout << "itemset " << s.ToString() << " over " << db.num_baskets()
            << " baskets\n"
            << "  chi-squared statistic : " << result.observed_statistic
            << "\n"
            << "  asymptotic p-value    : " << result.chi_squared_p_value
            << "\n"
            << "  exact (MC) p-value    : " << result.p_value << "  ("
            << options.rounds << " rounds)\n";
  return Status::OK();
}

Status RunRules(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("rules: missing transaction file");
  }
  CORRMINE_ASSIGN_OR_RETURN(SessionOptions session_options,
                            SessionOptionsFromFlags(flags));
  CORRMINE_ASSIGN_OR_RETURN(
      MiningSession session,
      MiningSession::Open(flags.positional()[1], session_options));
  if (session.num_baskets() == 0) {
    return Status::InvalidArgument("no baskets in input");
  }

  std::vector<FrequentItemset> frequent;
  std::string algo = flags.GetString("algo", "apriori");
  if (algo == "apriori") {
    AprioriOptions apriori;
    CORRMINE_ASSIGN_OR_RETURN(apriori.min_support_fraction,
                              flags.GetDouble("min-support", 0.01));
    CORRMINE_ASSIGN_OR_RETURN(frequent, session.MineFrequent(apriori));
  } else if (algo == "eclat") {
    EclatOptions eclat;
    CORRMINE_ASSIGN_OR_RETURN(eclat.min_support_fraction,
                              flags.GetDouble("min-support", 0.01));
    CORRMINE_ASSIGN_OR_RETURN(frequent, session.MineFrequentEclat(eclat));
  } else {
    return Status::InvalidArgument("unknown --algo: " + algo);
  }

  RuleOptions rule_options;
  CORRMINE_ASSIGN_OR_RETURN(rule_options.min_confidence,
                            flags.GetDouble("min-confidence", 0.5));
  CORRMINE_ASSIGN_OR_RETURN(
      auto rules, GenerateAssociationRules(frequent, session.num_baskets(),
                                           rule_options));

  io::TablePrinter table({"antecedent", "consequent", "support",
                          "confidence"});
  for (const AssociationRule& rule : rules) {
    table.AddRow({rule.antecedent.ToString(), rule.consequent.ToString(),
                  io::FormatDouble(rule.support, 4),
                  io::FormatDouble(rule.confidence, 3)});
  }
  table.Print(std::cout);
  std::cout << frequent.size() << " frequent itemsets, " << rules.size()
            << " rules\n";
  return Status::OK();
}

Status RunIngest(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("ingest: missing transaction file");
  }
  const std::string path = flags.positional()[1];
  const std::string append_path = flags.GetString("append", "");
  CORRMINE_ASSIGN_OR_RETURN(uint64_t retire, flags.GetUint64("retire", 0));

  if (!append_path.empty()) {
    // Binary chunks can only follow a binary base; a text base is converted
    // in place first (its rows become chunk 0).
    auto format_or = io::DetectTransactionFileFormat(path);
    if (format_or.ok() &&
        *format_or == io::TransactionFileFormat::kText) {
      CORRMINE_ASSIGN_OR_RETURN(TransactionDatabase base,
                                io::LoadTransactionFile(path));
      CORRMINE_RETURN_NOT_OK(io::WriteBinaryTransactionFile(base, path));
      std::cout << "converted text base to binary (" << base.num_baskets()
                << " baskets)\n";
    }
    CORRMINE_ASSIGN_OR_RETURN(TransactionDatabase delta,
                              io::LoadTransactionFile(append_path));
    if (delta.num_baskets() == 0) {
      return Status::InvalidArgument("ingest: delta file has no baskets");
    }
    CORRMINE_RETURN_NOT_OK(io::AppendBinaryTransactionChunk(delta, path));
    std::cout << "appended " << delta.num_baskets() << " baskets over "
              << delta.num_items() << " items\n";
  }
  if (retire > 0) {
    CORRMINE_RETURN_NOT_OK(io::RetireOldestTransactionChunks(
        path, static_cast<size_t>(retire)));
    std::cout << "retired " << retire
              << (retire == 1 ? " oldest chunk\n" : " oldest chunks\n");
  }

  CORRMINE_ASSIGN_OR_RETURN(io::TransactionFileFormat format,
                            io::DetectTransactionFileFormat(path));
  if (format == io::TransactionFileFormat::kText) {
    CORRMINE_ASSIGN_OR_RETURN(TransactionDatabase db,
                              io::LoadTransactionFile(path));
    std::cout << path << ": text format, " << db.num_baskets()
              << " baskets over " << db.num_items()
              << " items (ingest --append converts to chunked binary)\n";
    return Status::OK();
  }
  CORRMINE_ASSIGN_OR_RETURN(std::string bytes, io::ReadFileToString(path));
  CORRMINE_ASSIGN_OR_RETURN(auto chunks, io::ListTransactionChunks(bytes));
  uint64_t total_baskets = 0;
  ItemId item_space = 0;
  for (const io::TransactionChunkInfo& chunk : chunks) {
    total_baskets += chunk.num_baskets;
    item_space = std::max(item_space, chunk.num_items);
  }
  std::cout << path << ": " << chunks.size() << " chunk"
            << (chunks.size() == 1 ? "" : "s") << ", " << total_baskets
            << " baskets over " << item_space << " items\n";
  for (size_t i = 0; i < chunks.size(); ++i) {
    std::cout << "  chunk " << i << ": " << chunks[i].num_baskets
              << " baskets, " << chunks[i].num_items << " items, "
              << chunks[i].size << " bytes at offset " << chunks[i].offset
              << "\n";
  }
  return Status::OK();
}

Status RunGenerate(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return Status::InvalidArgument("generate: missing dataset kind");
  }
  std::string kind = flags.positional()[1];
  std::string out = flags.GetString("out", kind + ".txt");
  CORRMINE_ASSIGN_OR_RETURN(uint64_t seed, flags.GetUint64("seed", 1997));
  CORRMINE_ASSIGN_OR_RETURN(uint64_t baskets,
                            flags.GetUint64("baskets", 0));

  TransactionDatabase db(1);
  if (kind == "quest") {
    datagen::QuestOptions options;
    options.seed = seed;
    if (baskets > 0) options.num_transactions = baskets;
    CORRMINE_ASSIGN_OR_RETURN(db, datagen::GenerateQuestData(options));
  } else if (kind == "census") {
    datagen::CensusOptions options;
    options.seed = seed;
    if (baskets > 0) options.num_persons = baskets;
    CORRMINE_ASSIGN_OR_RETURN(db, datagen::GenerateCensusData(options));
  } else if (kind == "text") {
    datagen::TextCorpusOptions options;
    options.seed = seed;
    if (baskets > 0) {
      options.num_documents = static_cast<uint32_t>(baskets);
    }
    CORRMINE_ASSIGN_OR_RETURN(auto corpus,
                              datagen::GenerateTextCorpus(options));
    db = std::move(corpus.database);
  } else {
    return Status::InvalidArgument("unknown dataset kind: " + kind);
  }
  std::string format = flags.GetString("format", "text");
  if (format == "binary") {
    CORRMINE_RETURN_NOT_OK(io::WriteBinaryTransactionFile(db, out));
  } else if (format == "text") {
    CORRMINE_RETURN_NOT_OK(io::WriteTransactionFile(db, out));
  } else {
    return Status::InvalidArgument("unknown --format: " + format);
  }
  std::cout << "wrote " << db.num_baskets() << " baskets over "
            << db.num_items() << " items to " << out << " (" << format
            << ")\n";
  return Status::OK();
}

int Main(int argc, const char* const* argv) {
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n";
    return 2;
  }
  const FlagParser& flags = *flags_or;
  if (flags.GetBool("help", false) || flags.positional().empty()) {
    std::cout << kUsage;
    return flags.positional().empty() && !flags.GetBool("help", false) ? 2
                                                                       : 0;
  }
  // Resolve the counting kernel before any command touches a bitmap. An
  // explicit --kernel beats CORRMINE_KERNEL: installing it here means the
  // env-var path in ActiveKernels() never runs.
  const std::string kernel = flags.GetString("kernel", "");
  if (!kernel.empty()) {
    Status kernel_status = SetActiveKernel(kernel);
    if (!kernel_status.ok()) {
      std::cerr << kernel_status.ToString() << "\n";
      return 2;
    }
  }
  const std::string& command = flags.positional()[0];
  Status status = Status::OK();
  if (command == "mine") {
    status = RunMine(flags);
  } else if (command == "check") {
    status = RunCheck(flags);
  } else if (command == "dependencies") {
    status = RunDependencies(flags);
  } else if (command == "rules") {
    status = RunRules(flags);
  } else if (command == "ingest") {
    status = RunIngest(flags);
  } else if (command == "generate") {
    status = RunGenerate(flags);
  } else {
    std::cerr << "unknown command: " << command << "\n" << kUsage;
    return 2;
  }
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace corrmine

int main(int argc, char** argv) { return corrmine::Main(argc, argv); }
