// Regression sentinel for corrmine-stats-v1 documents (and Chrome traces).
//
// Usage:
//   statsdiff <baseline.json> <candidate.json>
//       [--timing-tolerance R]    fail when timing/memory values drift more
//                                 than fraction R (default: report only)
//       [--counters P1,P2,...]    also require exact equality for runtime
//                                 counters/gauges whose name starts with one
//                                 of the given prefixes (e.g.
//                                 "miner.,count_provider.,cache.", or
//                                 "kernel." for the counting-kernel word
//                                 counters, which are kernel-invariant)
//   statsdiff --validate-trace <trace.json>
//   statsdiff --validate-profile <stats.json>
//   statsdiff --validate-collapsed <profile.folded>
//
// The deterministic section is compared exactly, using the raw number
// literals from the file — never parsed doubles, so 64-bit counters compare
// at full precision. Any drift there is a regression: that section is
// contractually byte-identical across --threads and --shards (DESIGN.md §6).
// Runtime timings and "mem.*" gauges are machine noise; they are summarized,
// and only enforced when --timing-tolerance is given.
//
// Exit codes: 0 = match, 1 = drift / invalid trace, 2 = usage or I/O error.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "io/json_reader.h"

namespace corrmine {
namespace {

struct DiffReport {
  std::vector<std::string> failures;   // drift that fails the run
  std::vector<std::string> notes;      // report-only observations

  void Fail(const std::string& path, const std::string& what) {
    failures.push_back(path + ": " + what);
  }
  void Note(const std::string& note) { notes.push_back(note); }
};

StatusOr<io::JsonValue> LoadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream content;
  content << in.rdbuf();
  if (in.bad()) return Status::IOError("error reading " + path);
  auto parsed = io::ParseJson(content.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

const char* TypeName(io::JsonValue::Type type) {
  switch (type) {
    case io::JsonValue::Type::kNull: return "null";
    case io::JsonValue::Type::kBool: return "bool";
    case io::JsonValue::Type::kNumber: return "number";
    case io::JsonValue::Type::kString: return "string";
    case io::JsonValue::Type::kArray: return "array";
    case io::JsonValue::Type::kObject: return "object";
  }
  return "?";
}

std::string Render(const io::JsonValue& v) {
  switch (v.type) {
    case io::JsonValue::Type::kNull: return "null";
    case io::JsonValue::Type::kBool: return v.bool_value ? "true" : "false";
    case io::JsonValue::Type::kNumber: return v.literal;
    case io::JsonValue::Type::kString: return "\"" + v.string_value + "\"";
    case io::JsonValue::Type::kArray:
      return "<array of " + std::to_string(v.array.size()) + ">";
    case io::JsonValue::Type::kObject:
      return "<object of " + std::to_string(v.object.size()) + ">";
  }
  return "?";
}

/// Exact structural equality. Numbers compare by raw literal text so 64-bit
/// counters cannot alias through double rounding; objects compare by key
/// (order-insensitive), arrays element-wise.
void DiffExact(const std::string& path, const io::JsonValue& a,
               const io::JsonValue& b, DiffReport* report) {
  if (a.type != b.type) {
    report->Fail(path, std::string("type ") + TypeName(a.type) + " vs " +
                           TypeName(b.type));
    return;
  }
  switch (a.type) {
    case io::JsonValue::Type::kNull:
      return;
    case io::JsonValue::Type::kBool:
      if (a.bool_value != b.bool_value) {
        report->Fail(path, Render(a) + " != " + Render(b));
      }
      return;
    case io::JsonValue::Type::kNumber:
      if (a.literal != b.literal) {
        report->Fail(path, a.literal + " != " + b.literal);
      }
      return;
    case io::JsonValue::Type::kString:
      if (a.string_value != b.string_value) {
        report->Fail(path, Render(a) + " != " + Render(b));
      }
      return;
    case io::JsonValue::Type::kArray: {
      if (a.array.size() != b.array.size()) {
        report->Fail(path, "length " + std::to_string(a.array.size()) +
                               " != " + std::to_string(b.array.size()));
        return;
      }
      for (size_t i = 0; i < a.array.size(); ++i) {
        DiffExact(path + "[" + std::to_string(i) + "]", a.array[i],
                  b.array[i], report);
      }
      return;
    }
    case io::JsonValue::Type::kObject: {
      for (const auto& [key, value] : a.object) {
        const io::JsonValue* other = b.Find(key);
        if (other == nullptr) {
          report->Fail(path + "." + key, "missing in candidate");
          continue;
        }
        DiffExact(path + "." + key, value, *other, report);
      }
      for (const auto& [key, value] : b.object) {
        if (a.Find(key) == nullptr) {
          report->Fail(path + "." + key, "missing in baseline");
        }
      }
      return;
    }
  }
}

/// Timing-ish metric names never carry determinism guarantees: wall-clock
/// nanoseconds, memory byte counts, the pool.* scheduler family
/// (submissions, steals, queue depths — all schedule noise by definition),
/// and the column.* storage gauges (container mix and payload bytes track
/// the provider's physical layout, which legitimately differs between an
/// in-memory index and its spilled shard files). They move with the
/// machine or the storage plan, not the mined answer.
bool IsTimingLike(const std::string& name) {
  if (name.size() >= 2 && name.compare(name.size() - 2, 2, "ns") == 0) {
    return true;
  }
  return name.rfind("mem.", 0) == 0 || name.rfind("pool.", 0) == 0 ||
         name.rfind("column.", 0) == 0;
}

bool MatchesAnyPrefix(const std::string& name,
                      const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// Walks one runtime scalar family ("counters" or "gauges") of both docs.
void DiffRuntimeFamily(const std::string& family, const io::JsonValue* a,
                       const io::JsonValue* b, double timing_tolerance,
                       const std::vector<std::string>& counter_prefixes,
                       DiffReport* report) {
  if (a == nullptr || b == nullptr || !a->is_object() || !b->is_object()) {
    return;
  }
  for (const auto& [name, value] : a->object) {
    const io::JsonValue* other = b->Find(name);
    if (other == nullptr || !value.is_number() || !other->is_number()) {
      continue;
    }
    const std::string path = "runtime." + family + "." + name;
    if (IsTimingLike(name)) {
      const double lhs = value.number_value;
      const double rhs = other->number_value;
      const double scale = std::max(std::fabs(lhs), std::fabs(rhs));
      const double drift = scale > 0 ? std::fabs(lhs - rhs) / scale : 0.0;
      if (timing_tolerance >= 0 && drift > timing_tolerance) {
        std::ostringstream what;
        what << value.literal << " vs " << other->literal << " (drift "
             << drift << " > tolerance " << timing_tolerance << ")";
        report->Fail(path, what.str());
      } else if (drift > 0.10) {
        std::ostringstream note;
        note << path << ": " << value.literal << " vs " << other->literal
             << " (report only)";
        report->Note(note.str());
      }
      continue;
    }
    if (MatchesAnyPrefix(name, counter_prefixes) &&
        value.literal != other->literal) {
      report->Fail(path, value.literal + " != " + other->literal);
    }
  }
}

int DiffStats(const std::string& baseline_path,
              const std::string& candidate_path, double timing_tolerance,
              const std::vector<std::string>& counter_prefixes) {
  auto baseline_or = LoadJsonFile(baseline_path);
  if (!baseline_or.ok()) {
    std::cerr << baseline_or.status().ToString() << "\n";
    return 2;
  }
  auto candidate_or = LoadJsonFile(candidate_path);
  if (!candidate_or.ok()) {
    std::cerr << candidate_or.status().ToString() << "\n";
    return 2;
  }
  const io::JsonValue& baseline = *baseline_or;
  const io::JsonValue& candidate = *candidate_or;

  DiffReport report;
  for (const io::JsonValue* doc : {&baseline, &candidate}) {
    const io::JsonValue* schema =
        doc->is_object() ? doc->Find("schema") : nullptr;
    if (schema == nullptr || !schema->is_string() ||
        schema->string_value != "corrmine-stats-v1") {
      std::cerr << (doc == &baseline ? baseline_path : candidate_path)
                << ": not a corrmine-stats-v1 document\n";
      return 2;
    }
  }

  const io::JsonValue* det_a = baseline.Find("deterministic");
  const io::JsonValue* det_b = candidate.Find("deterministic");
  if (det_a == nullptr || det_b == nullptr) {
    std::cerr << "missing \"deterministic\" section\n";
    return 2;
  }
  // Kernel identity is machine-dependent by construction (runtime SIMD
  // dispatch, DESIGN.md §9), so it must never leak into the deterministic
  // section; a writer that puts it there has broken the byte-identity
  // contract even if both files happen to agree today.
  for (const io::JsonValue* det : {det_a, det_b}) {
    if (det->is_object() && det->Find("kernel") != nullptr) {
      report.Fail("deterministic.kernel",
                  "kernel info inside the deterministic section");
    }
    // Same contract for profiling data: PMU counters and sample tallies
    // are machine noise by definition and may never live where byte
    // identity is promised.
    if (det->is_object() && det->Find("profile") != nullptr) {
      report.Fail("deterministic.profile",
                  "profile info inside the deterministic section");
    }
  }
  DiffExact("deterministic", *det_a, *det_b, &report);

  // The top-level "kernel" object is report-only: differing kernels across
  // the two runs is exactly the situation statsdiff exists to vet.
  const io::JsonValue* kernel_a = baseline.Find("kernel");
  const io::JsonValue* kernel_b = candidate.Find("kernel");
  if (kernel_a != nullptr && kernel_b != nullptr && kernel_a->is_object() &&
      kernel_b->is_object()) {
    const io::JsonValue* name_a = kernel_a->Find("name");
    const io::JsonValue* name_b = kernel_b->Find("name");
    if (name_a != nullptr && name_b != nullptr && name_a->is_string() &&
        name_b->is_string() && name_a->string_value != name_b->string_value) {
      report.Note("kernel.name: \"" + name_a->string_value + "\" vs \"" +
                  name_b->string_value + "\" (report only)");
    }
  }

  const io::JsonValue* rt_a = baseline.Find("runtime");
  const io::JsonValue* rt_b = candidate.Find("runtime");
  bool metrics_in_both = false;
  if (rt_a != nullptr && rt_b != nullptr && rt_a->is_object() &&
      rt_b->is_object()) {
    const io::JsonValue* ca = rt_a->Find("metrics_compiled");
    const io::JsonValue* cb = rt_b->Find("metrics_compiled");
    metrics_in_both = ca != nullptr && cb != nullptr && ca->bool_value &&
                      cb->bool_value;
  }
  if (metrics_in_both) {
    DiffRuntimeFamily("counters", rt_a->Find("counters"),
                      rt_b->Find("counters"), timing_tolerance,
                      counter_prefixes, &report);
    DiffRuntimeFamily("gauges", rt_a->Find("gauges"), rt_b->Find("gauges"),
                      timing_tolerance, counter_prefixes, &report);
  } else if (!counter_prefixes.empty() || timing_tolerance >= 0) {
    report.Note(
        "runtime sections skipped (metrics not compiled in both documents)");
  }

  for (const std::string& note : report.notes) {
    std::cerr << "note: " << note << "\n";
  }
  if (!report.failures.empty()) {
    for (const std::string& failure : report.failures) {
      std::cerr << "DRIFT " << failure << "\n";
    }
    std::cerr << report.failures.size() << " drifting value(s) between "
              << baseline_path << " and " << candidate_path << "\n";
    return 1;
  }
  std::cout << "stats match: " << baseline_path << " == " << candidate_path
            << "\n";
  return 0;
}

/// Chrome Trace Event Format checks: the envelope shape, per-event required
/// fields, balanced B/E nesting per (pid, tid), and non-decreasing
/// timestamps per thread track. These are exactly the invariants the
/// exporter promises (common/trace.h), so a violation means a broken writer,
/// not an odd workload.
int ValidateTrace(const std::string& path) {
  auto doc_or = LoadJsonFile(path);
  if (!doc_or.ok()) {
    std::cerr << doc_or.status().ToString() << "\n";
    return 2;
  }
  const io::JsonValue& doc = *doc_or;
  std::vector<std::string> errors;
  const io::JsonValue* events =
      doc.is_object() ? doc.Find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    std::cerr << path << ": no \"traceEvents\" array\n";
    return 1;
  }

  struct Track {
    std::string key;
    std::vector<std::string> open;  // stack of open span names
    double last_ts = -1;
  };
  std::vector<Track> tracks;
  auto track_for = [&tracks](const std::string& key) -> Track& {
    for (Track& t : tracks) {
      if (t.key == key) return t;
    }
    tracks.push_back(Track{key, {}, -1});
    return tracks.back();
  };

  for (size_t i = 0; i < events->array.size(); ++i) {
    const io::JsonValue& event = events->array[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (!event.is_object()) {
      errors.push_back(where + ": not an object");
      continue;
    }
    const io::JsonValue* name = event.Find("name");
    const io::JsonValue* ph = event.Find("ph");
    const io::JsonValue* ts = event.Find("ts");
    const io::JsonValue* pid = event.Find("pid");
    const io::JsonValue* tid = event.Find("tid");
    if (name == nullptr || !name->is_string() || name->string_value.empty()) {
      errors.push_back(where + ": missing \"name\"");
      continue;
    }
    if (ph == nullptr || !ph->is_string()) {
      errors.push_back(where + ": missing \"ph\"");
      continue;
    }
    if (ts == nullptr || !ts->is_number()) {
      errors.push_back(where + ": missing numeric \"ts\"");
      continue;
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      errors.push_back(where + ": missing \"pid\"/\"tid\"");
      continue;
    }
    const std::string& phase = ph->string_value;
    if (phase != "B" && phase != "E" && phase != "i" && phase != "M") {
      errors.push_back(where + ": unexpected phase \"" + phase + "\"");
      continue;
    }
    if (phase == "M") continue;  // Metadata events carry no timeline.
    Track& track = track_for(pid->literal + "/" + tid->literal);
    if (ts->number_value < track.last_ts) {
      errors.push_back(where + ": timestamp " + ts->literal +
                       " goes backwards on tid " + tid->literal);
    }
    track.last_ts = ts->number_value;
    if (phase == "B") {
      track.open.push_back(name->string_value);
    } else if (phase == "E") {
      if (track.open.empty()) {
        errors.push_back(where + ": E \"" + name->string_value +
                         "\" with no open span on tid " + tid->literal);
      } else {
        if (track.open.back() != name->string_value) {
          errors.push_back(where + ": E \"" + name->string_value +
                           "\" closes \"" + track.open.back() + "\"");
        }
        track.open.pop_back();
      }
    } else if (phase == "i") {
      const io::JsonValue* scope = event.Find("s");
      if (scope == nullptr || !scope->is_string()) {
        errors.push_back(where + ": instant without \"s\" scope");
      }
    }
  }
  for (const Track& track : tracks) {
    for (const std::string& open : track.open) {
      errors.push_back("unclosed span \"" + open + "\" on track " +
                       track.key);
    }
  }

  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::cerr << "INVALID " << error << "\n";
    }
    std::cerr << path << ": " << errors.size() << " trace violation(s)\n";
    return 1;
  }
  std::cout << "trace valid: " << path << " ("
            << events->array.size() << " events, "
            << tracks.size() << " thread tracks)\n";
  return 0;
}

/// Structural checks for the stats-JSON "profile" section
/// (io/stats_json.h, DESIGN.md §13). Verifies shape, not values: the
/// section is machine-dependent by design, but a malformed one means a
/// broken writer. Passes on every configuration the writer supports —
/// PMU denied, sampling off, metrics compiled out — because the writer
/// must emit a structurally complete section in all of them.
int ValidateProfile(const std::string& path) {
  auto doc_or = LoadJsonFile(path);
  if (!doc_or.ok()) {
    std::cerr << doc_or.status().ToString() << "\n";
    return 2;
  }
  const io::JsonValue& doc = *doc_or;
  std::vector<std::string> errors;
  const io::JsonValue* profile =
      doc.is_object() ? doc.Find("profile") : nullptr;
  if (profile == nullptr || !profile->is_object()) {
    std::cerr << path << ": no \"profile\" object\n";
    return 1;
  }

  auto require_number = [&errors](const io::JsonValue* obj,
                                  const std::string& where,
                                  const char* key) {
    const io::JsonValue* v = obj->Find(key);
    if (v == nullptr || !v->is_number()) {
      errors.push_back(where + "." + key + ": missing or not a number");
      return;
    }
    if (v->number_value < 0 || !std::isfinite(v->number_value)) {
      errors.push_back(where + "." + key + ": " + v->literal +
                       " outside [0,inf)");
    }
  };

  const io::JsonValue* pmu = profile->Find("pmu");
  if (pmu == nullptr || !pmu->is_object()) {
    errors.push_back("profile.pmu: missing object");
  } else {
    const io::JsonValue* available = pmu->Find("available");
    if (available == nullptr || available->type != io::JsonValue::Type::kBool) {
      errors.push_back("profile.pmu.available: missing or not a boolean");
    }
    const io::JsonValue* reason = pmu->Find("reason");
    if (reason == nullptr || !reason->is_string()) {
      errors.push_back("profile.pmu.reason: missing or not a string");
    } else if (available != nullptr && available->type == io::JsonValue::Type::kBool &&
               !available->bool_value && reason->string_value.empty()) {
      errors.push_back(
          "profile.pmu.reason: empty while pmu is unavailable — the "
          "degradation contract requires an explanation");
    }
    const io::JsonValue* requested = pmu->Find("requested");
    if (requested == nullptr || requested->type != io::JsonValue::Type::kBool) {
      errors.push_back("profile.pmu.requested: missing or not a boolean");
    }
  }

  const io::JsonValue* phases = profile->Find("phases");
  size_t num_phases = 0;
  if (phases == nullptr || !phases->is_object()) {
    errors.push_back("profile.phases: missing object");
  } else {
    num_phases = phases->object.size();
    for (const auto& [name, phase] : phases->object) {
      const std::string where = "profile.phases." + name;
      if (!phase.is_object()) {
        errors.push_back(where + ": not an object");
        continue;
      }
      for (const char* key :
           {"scopes", "cycles", "instructions", "ipc", "llc_loads",
            "llc_misses", "llc_miss_rate", "branch_misses",
            "branch_miss_rate", "task_clock_ns"}) {
        require_number(&phase, where, key);
      }
    }
  }

  const io::JsonValue* sampling = profile->Find("sampling");
  if (sampling == nullptr || !sampling->is_object()) {
    errors.push_back("profile.sampling: missing object");
  } else {
    const io::JsonValue* enabled = sampling->Find("enabled");
    if (enabled == nullptr || enabled->type != io::JsonValue::Type::kBool) {
      errors.push_back("profile.sampling.enabled: missing or not a boolean");
    }
    for (const char* key :
         {"samples", "dropped", "unresolved", "interval_usec"}) {
      require_number(sampling, "profile.sampling", key);
    }
  }

  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::cerr << "INVALID " << error << "\n";
    }
    std::cerr << path << ": " << errors.size() << " profile violation(s)\n";
    return 1;
  }
  std::cout << "profile valid: " << path << " (" << num_phases
            << " phases)\n";
  return 0;
}

/// Collapsed-stack format checks (flamegraph.pl input): every non-empty
/// line is "frame[;frame...] count" — a space-separated trailing integer
/// count >= 1 and a non-empty semicolon-separated frame list with no empty
/// frames. An empty file is valid (no samples captured, e.g. a sub-tick
/// run), but reported so CI can distinguish it.
int ValidateCollapsed(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::vector<std::string> errors;
  std::string line;
  size_t line_no = 0;
  size_t stacks = 0;
  uint64_t samples = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      errors.push_back(where + ": no \"frames count\" separator");
      continue;
    }
    const std::string count_str = line.substr(space + 1);
    bool digits = true;
    for (char c : count_str) {
      if (c < '0' || c > '9') digits = false;
    }
    if (!digits || count_str == "0") {
      errors.push_back(where + ": count \"" + count_str +
                       "\" is not a positive integer");
      continue;
    }
    const std::string frames = line.substr(0, space);
    bool empty_frame = frames.front() == ';' || frames.back() == ';';
    for (size_t i = 0; i + 1 < frames.size(); ++i) {
      if (frames[i] == ';' && frames[i + 1] == ';') empty_frame = true;
    }
    if (empty_frame) {
      errors.push_back(where + ": empty frame in stack");
      continue;
    }
    ++stacks;
    samples += std::strtoull(count_str.c_str(), nullptr, 10);
  }
  if (in.bad()) {
    std::cerr << "error reading " << path << "\n";
    return 2;
  }
  if (!errors.empty()) {
    for (const std::string& error : errors) {
      std::cerr << "INVALID " << error << "\n";
    }
    std::cerr << path << ": " << errors.size()
              << " collapsed-stack violation(s)\n";
    return 1;
  }
  std::cout << "collapsed stacks valid: " << path << " (" << stacks
            << " unique stacks, " << samples << " samples)\n";
  return 0;
}

int Main(int argc, const char* const* argv) {
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n";
    return 2;
  }
  const FlagParser& flags = *flags_or;

  std::string trace_path = flags.GetString("validate-trace", "");
  if (!trace_path.empty()) return ValidateTrace(trace_path);
  std::string profile_path = flags.GetString("validate-profile", "");
  if (!profile_path.empty()) return ValidateProfile(profile_path);
  std::string collapsed_path = flags.GetString("validate-collapsed", "");
  if (!collapsed_path.empty()) return ValidateCollapsed(collapsed_path);

  if (flags.GetBool("help", false) || flags.positional().size() != 2) {
    std::cerr << "usage: statsdiff <baseline.json> <candidate.json>\n"
                 "           [--timing-tolerance R] [--counters P1,P2,...]\n"
                 "       statsdiff --validate-trace <trace.json>\n"
                 "       statsdiff --validate-profile <stats.json>\n"
                 "       statsdiff --validate-collapsed <profile.folded>\n";
    return flags.GetBool("help", false) ? 0 : 2;
  }

  double timing_tolerance = -1;
  {
    auto tol_or = flags.GetDouble("timing-tolerance", -1);
    if (!tol_or.ok()) {
      std::cerr << tol_or.status().ToString() << "\n";
      return 2;
    }
    timing_tolerance = *tol_or;
  }
  std::vector<std::string> counter_prefixes;
  const std::string counters_arg = flags.GetString("counters", "");
  for (std::string_view token : SplitString(counters_arg, ",")) {
    std::string_view trimmed = TrimString(token);
    if (!trimmed.empty()) counter_prefixes.emplace_back(trimmed);
  }

  return DiffStats(flags.positional()[0], flags.positional()[1],
                   timing_tolerance, counter_prefixes);
}

}  // namespace
}  // namespace corrmine

int main(int argc, char** argv) { return corrmine::Main(argc, argv); }
