# Empty dependencies file for rare_events.
# This may be replaced when dependencies are built.
