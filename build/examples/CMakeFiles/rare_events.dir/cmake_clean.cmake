file(REMOVE_RECURSE
  "CMakeFiles/rare_events.dir/rare_events.cpp.o"
  "CMakeFiles/rare_events.dir/rare_events.cpp.o.d"
  "rare_events"
  "rare_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rare_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
