# Empty compiler generated dependencies file for vetting_pipeline.
# This may be replaced when dependencies are built.
