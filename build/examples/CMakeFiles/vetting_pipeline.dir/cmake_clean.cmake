file(REMOVE_RECURSE
  "CMakeFiles/vetting_pipeline.dir/vetting_pipeline.cpp.o"
  "CMakeFiles/vetting_pipeline.dir/vetting_pipeline.cpp.o.d"
  "vetting_pipeline"
  "vetting_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vetting_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
