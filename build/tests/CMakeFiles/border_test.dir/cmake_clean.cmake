file(REMOVE_RECURSE
  "CMakeFiles/border_test.dir/border_test.cc.o"
  "CMakeFiles/border_test.dir/border_test.cc.o.d"
  "border_test"
  "border_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/border_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
