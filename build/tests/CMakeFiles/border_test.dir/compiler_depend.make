# Empty compiler generated dependencies file for border_test.
# This may be replaced when dependencies are built.
