file(REMOVE_RECURSE
  "CMakeFiles/g_test_test.dir/g_test_test.cc.o"
  "CMakeFiles/g_test_test.dir/g_test_test.cc.o.d"
  "g_test_test"
  "g_test_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g_test_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
