# Empty compiler generated dependencies file for g_test_test.
# This may be replaced when dependencies are built.
