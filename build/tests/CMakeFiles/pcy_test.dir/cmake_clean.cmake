file(REMOVE_RECURSE
  "CMakeFiles/pcy_test.dir/pcy_test.cc.o"
  "CMakeFiles/pcy_test.dir/pcy_test.cc.o.d"
  "pcy_test"
  "pcy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
