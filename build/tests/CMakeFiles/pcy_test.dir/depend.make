# Empty dependencies file for pcy_test.
# This may be replaced when dependencies are built.
