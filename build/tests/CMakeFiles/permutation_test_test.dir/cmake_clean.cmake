file(REMOVE_RECURSE
  "CMakeFiles/permutation_test_test.dir/permutation_test_test.cc.o"
  "CMakeFiles/permutation_test_test.dir/permutation_test_test.cc.o.d"
  "permutation_test_test"
  "permutation_test_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permutation_test_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
