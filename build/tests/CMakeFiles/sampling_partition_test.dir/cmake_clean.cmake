file(REMOVE_RECURSE
  "CMakeFiles/sampling_partition_test.dir/sampling_partition_test.cc.o"
  "CMakeFiles/sampling_partition_test.dir/sampling_partition_test.cc.o.d"
  "sampling_partition_test"
  "sampling_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
