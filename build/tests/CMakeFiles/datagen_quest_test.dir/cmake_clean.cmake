file(REMOVE_RECURSE
  "CMakeFiles/datagen_quest_test.dir/datagen_quest_test.cc.o"
  "CMakeFiles/datagen_quest_test.dir/datagen_quest_test.cc.o.d"
  "datagen_quest_test"
  "datagen_quest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_quest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
