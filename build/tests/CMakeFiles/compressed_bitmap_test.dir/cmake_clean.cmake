file(REMOVE_RECURSE
  "CMakeFiles/compressed_bitmap_test.dir/compressed_bitmap_test.cc.o"
  "CMakeFiles/compressed_bitmap_test.dir/compressed_bitmap_test.cc.o.d"
  "compressed_bitmap_test"
  "compressed_bitmap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
