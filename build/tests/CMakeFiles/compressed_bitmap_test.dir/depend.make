# Empty dependencies file for compressed_bitmap_test.
# This may be replaced when dependencies are built.
