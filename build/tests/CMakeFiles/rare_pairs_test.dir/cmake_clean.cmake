file(REMOVE_RECURSE
  "CMakeFiles/rare_pairs_test.dir/rare_pairs_test.cc.o"
  "CMakeFiles/rare_pairs_test.dir/rare_pairs_test.cc.o.d"
  "rare_pairs_test"
  "rare_pairs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rare_pairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
