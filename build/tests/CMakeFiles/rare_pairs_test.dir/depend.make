# Empty dependencies file for rare_pairs_test.
# This may be replaced when dependencies are built.
