file(REMOVE_RECURSE
  "CMakeFiles/io_formats_test.dir/io_formats_test.cc.o"
  "CMakeFiles/io_formats_test.dir/io_formats_test.cc.o.d"
  "io_formats_test"
  "io_formats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
