# Empty compiler generated dependencies file for stats_exact_test.
# This may be replaced when dependencies are built.
