file(REMOVE_RECURSE
  "CMakeFiles/stats_exact_test.dir/stats_exact_test.cc.o"
  "CMakeFiles/stats_exact_test.dir/stats_exact_test.cc.o.d"
  "stats_exact_test"
  "stats_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
