# Empty compiler generated dependencies file for contingency_test.
# This may be replaced when dependencies are built.
