file(REMOVE_RECURSE
  "CMakeFiles/cell_support_test.dir/cell_support_test.cc.o"
  "CMakeFiles/cell_support_test.dir/cell_support_test.cc.o.d"
  "cell_support_test"
  "cell_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
