file(REMOVE_RECURSE
  "CMakeFiles/datagen_text_test.dir/datagen_text_test.cc.o"
  "CMakeFiles/datagen_text_test.dir/datagen_text_test.cc.o.d"
  "datagen_text_test"
  "datagen_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
