# Empty dependencies file for stats_gamma_test.
# This may be replaced when dependencies are built.
