file(REMOVE_RECURSE
  "CMakeFiles/batch_tables_test.dir/batch_tables_test.cc.o"
  "CMakeFiles/batch_tables_test.dir/batch_tables_test.cc.o.d"
  "batch_tables_test"
  "batch_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
