# Empty dependencies file for batch_tables_test.
# This may be replaced when dependencies are built.
