file(REMOVE_RECURSE
  "CMakeFiles/chi_squared_test.dir/chi_squared_test.cc.o"
  "CMakeFiles/chi_squared_test.dir/chi_squared_test.cc.o.d"
  "chi_squared_test"
  "chi_squared_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chi_squared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
