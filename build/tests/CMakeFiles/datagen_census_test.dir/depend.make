# Empty dependencies file for datagen_census_test.
# This may be replaced when dependencies are built.
