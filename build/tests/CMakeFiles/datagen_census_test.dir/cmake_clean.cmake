file(REMOVE_RECURSE
  "CMakeFiles/datagen_census_test.dir/datagen_census_test.cc.o"
  "CMakeFiles/datagen_census_test.dir/datagen_census_test.cc.o.d"
  "datagen_census_test"
  "datagen_census_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
