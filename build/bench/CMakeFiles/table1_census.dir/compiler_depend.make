# Empty compiler generated dependencies file for table1_census.
# This may be replaced when dependencies are built.
