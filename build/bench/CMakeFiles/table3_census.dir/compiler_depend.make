# Empty compiler generated dependencies file for table3_census.
# This may be replaced when dependencies are built.
