file(REMOVE_RECURSE
  "CMakeFiles/table3_census.dir/table3_census.cc.o"
  "CMakeFiles/table3_census.dir/table3_census.cc.o.d"
  "table3_census"
  "table3_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
