file(REMOVE_RECURSE
  "CMakeFiles/bench_candidate_gen.dir/bench_candidate_gen.cc.o"
  "CMakeFiles/bench_candidate_gen.dir/bench_candidate_gen.cc.o.d"
  "bench_candidate_gen"
  "bench_candidate_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_candidate_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
