# Empty dependencies file for bench_miner.
# This may be replaced when dependencies are built.
