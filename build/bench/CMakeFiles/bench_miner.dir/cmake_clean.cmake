file(REMOVE_RECURSE
  "CMakeFiles/bench_miner.dir/bench_miner.cc.o"
  "CMakeFiles/bench_miner.dir/bench_miner.cc.o.d"
  "bench_miner"
  "bench_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
