file(REMOVE_RECURSE
  "CMakeFiles/table4_text.dir/table4_text.cc.o"
  "CMakeFiles/table4_text.dir/table4_text.cc.o.d"
  "table4_text"
  "table4_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
