# Empty compiler generated dependencies file for table4_text.
# This may be replaced when dependencies are built.
