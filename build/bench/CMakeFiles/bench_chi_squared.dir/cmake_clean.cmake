file(REMOVE_RECURSE
  "CMakeFiles/bench_chi_squared.dir/bench_chi_squared.cc.o"
  "CMakeFiles/bench_chi_squared.dir/bench_chi_squared.cc.o.d"
  "bench_chi_squared"
  "bench_chi_squared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chi_squared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
