# Empty dependencies file for bench_chi_squared.
# This may be replaced when dependencies are built.
