# Empty dependencies file for bench_random_walk.
# This may be replaced when dependencies are built.
