# Empty compiler generated dependencies file for examples_paper.
# This may be replaced when dependencies are built.
