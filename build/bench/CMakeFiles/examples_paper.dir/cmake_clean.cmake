file(REMOVE_RECURSE
  "CMakeFiles/examples_paper.dir/examples_paper.cc.o"
  "CMakeFiles/examples_paper.dir/examples_paper.cc.o.d"
  "examples_paper"
  "examples_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
