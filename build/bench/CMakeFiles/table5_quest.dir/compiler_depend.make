# Empty compiler generated dependencies file for table5_quest.
# This may be replaced when dependencies are built.
