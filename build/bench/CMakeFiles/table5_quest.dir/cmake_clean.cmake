file(REMOVE_RECURSE
  "CMakeFiles/table5_quest.dir/table5_quest.cc.o"
  "CMakeFiles/table5_quest.dir/table5_quest.cc.o.d"
  "table5_quest"
  "table5_quest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_quest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
