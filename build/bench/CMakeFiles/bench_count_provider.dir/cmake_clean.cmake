file(REMOVE_RECURSE
  "CMakeFiles/bench_count_provider.dir/bench_count_provider.cc.o"
  "CMakeFiles/bench_count_provider.dir/bench_count_provider.cc.o.d"
  "bench_count_provider"
  "bench_count_provider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_count_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
