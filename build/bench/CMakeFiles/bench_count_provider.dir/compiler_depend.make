# Empty compiler generated dependencies file for bench_count_provider.
# This may be replaced when dependencies are built.
