file(REMOVE_RECURSE
  "CMakeFiles/table_categorical.dir/table_categorical.cc.o"
  "CMakeFiles/table_categorical.dir/table_categorical.cc.o.d"
  "table_categorical"
  "table_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
