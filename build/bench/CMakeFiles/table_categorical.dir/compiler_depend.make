# Empty compiler generated dependencies file for table_categorical.
# This may be replaced when dependencies are built.
