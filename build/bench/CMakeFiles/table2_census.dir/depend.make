# Empty dependencies file for table2_census.
# This may be replaced when dependencies are built.
