file(REMOVE_RECURSE
  "CMakeFiles/table2_census.dir/table2_census.cc.o"
  "CMakeFiles/table2_census.dir/table2_census.cc.o.d"
  "table2_census"
  "table2_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
