# Empty compiler generated dependencies file for corrmine.
# This may be replaced when dependencies are built.
