
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/corrmine.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/common/flags.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/corrmine.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/corrmine.dir/common/status.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/corrmine.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/batch_tables.cc" "src/CMakeFiles/corrmine.dir/core/batch_tables.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/batch_tables.cc.o.d"
  "/root/repo/src/core/border.cc" "src/CMakeFiles/corrmine.dir/core/border.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/border.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/corrmine.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/cell_support.cc" "src/CMakeFiles/corrmine.dir/core/cell_support.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/cell_support.cc.o.d"
  "/root/repo/src/core/chi_squared_miner.cc" "src/CMakeFiles/corrmine.dir/core/chi_squared_miner.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/chi_squared_miner.cc.o.d"
  "/root/repo/src/core/chi_squared_test.cc" "src/CMakeFiles/corrmine.dir/core/chi_squared_test.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/chi_squared_test.cc.o.d"
  "/root/repo/src/core/contingency_table.cc" "src/CMakeFiles/corrmine.dir/core/contingency_table.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/contingency_table.cc.o.d"
  "/root/repo/src/core/fraction_estimator.cc" "src/CMakeFiles/corrmine.dir/core/fraction_estimator.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/fraction_estimator.cc.o.d"
  "/root/repo/src/core/interest.cc" "src/CMakeFiles/corrmine.dir/core/interest.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/interest.cc.o.d"
  "/root/repo/src/core/random_walk_miner.cc" "src/CMakeFiles/corrmine.dir/core/random_walk_miner.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/random_walk_miner.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/corrmine.dir/core/report.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/core/report.cc.o.d"
  "/root/repo/src/cube/datacube.cc" "src/CMakeFiles/corrmine.dir/cube/datacube.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/cube/datacube.cc.o.d"
  "/root/repo/src/datagen/categorical_census.cc" "src/CMakeFiles/corrmine.dir/datagen/categorical_census.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/datagen/categorical_census.cc.o.d"
  "/root/repo/src/datagen/census_generator.cc" "src/CMakeFiles/corrmine.dir/datagen/census_generator.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/datagen/census_generator.cc.o.d"
  "/root/repo/src/datagen/quest_generator.cc" "src/CMakeFiles/corrmine.dir/datagen/quest_generator.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/datagen/quest_generator.cc.o.d"
  "/root/repo/src/datagen/rng.cc" "src/CMakeFiles/corrmine.dir/datagen/rng.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/datagen/rng.cc.o.d"
  "/root/repo/src/datagen/text_generator.cc" "src/CMakeFiles/corrmine.dir/datagen/text_generator.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/datagen/text_generator.cc.o.d"
  "/root/repo/src/hash/dynamic_perfect_hash.cc" "src/CMakeFiles/corrmine.dir/hash/dynamic_perfect_hash.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/hash/dynamic_perfect_hash.cc.o.d"
  "/root/repo/src/hash/fks_perfect_hash.cc" "src/CMakeFiles/corrmine.dir/hash/fks_perfect_hash.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/hash/fks_perfect_hash.cc.o.d"
  "/root/repo/src/hash/itemset_set.cc" "src/CMakeFiles/corrmine.dir/hash/itemset_set.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/hash/itemset_set.cc.o.d"
  "/root/repo/src/hash/universal_hash.cc" "src/CMakeFiles/corrmine.dir/hash/universal_hash.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/hash/universal_hash.cc.o.d"
  "/root/repo/src/io/binary_io.cc" "src/CMakeFiles/corrmine.dir/io/binary_io.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/io/binary_io.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/corrmine.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/io/csv.cc.o.d"
  "/root/repo/src/io/result_io.cc" "src/CMakeFiles/corrmine.dir/io/result_io.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/io/result_io.cc.o.d"
  "/root/repo/src/io/table_printer.cc" "src/CMakeFiles/corrmine.dir/io/table_printer.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/io/table_printer.cc.o.d"
  "/root/repo/src/io/tokenizer.cc" "src/CMakeFiles/corrmine.dir/io/tokenizer.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/io/tokenizer.cc.o.d"
  "/root/repo/src/io/transaction_io.cc" "src/CMakeFiles/corrmine.dir/io/transaction_io.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/io/transaction_io.cc.o.d"
  "/root/repo/src/itemset/bitmap.cc" "src/CMakeFiles/corrmine.dir/itemset/bitmap.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/itemset/bitmap.cc.o.d"
  "/root/repo/src/itemset/categorical_database.cc" "src/CMakeFiles/corrmine.dir/itemset/categorical_database.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/itemset/categorical_database.cc.o.d"
  "/root/repo/src/itemset/compressed_bitmap.cc" "src/CMakeFiles/corrmine.dir/itemset/compressed_bitmap.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/itemset/compressed_bitmap.cc.o.d"
  "/root/repo/src/itemset/count_provider.cc" "src/CMakeFiles/corrmine.dir/itemset/count_provider.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/itemset/count_provider.cc.o.d"
  "/root/repo/src/itemset/itemset.cc" "src/CMakeFiles/corrmine.dir/itemset/itemset.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/itemset/itemset.cc.o.d"
  "/root/repo/src/itemset/transaction_database.cc" "src/CMakeFiles/corrmine.dir/itemset/transaction_database.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/itemset/transaction_database.cc.o.d"
  "/root/repo/src/linalg/sym_matrix.cc" "src/CMakeFiles/corrmine.dir/linalg/sym_matrix.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/linalg/sym_matrix.cc.o.d"
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/corrmine.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/association_rules.cc" "src/CMakeFiles/corrmine.dir/mining/association_rules.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/association_rules.cc.o.d"
  "/root/repo/src/mining/categorical_miner.cc" "src/CMakeFiles/corrmine.dir/mining/categorical_miner.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/categorical_miner.cc.o.d"
  "/root/repo/src/mining/eclat.cc" "src/CMakeFiles/corrmine.dir/mining/eclat.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/eclat.cc.o.d"
  "/root/repo/src/mining/fp_growth.cc" "src/CMakeFiles/corrmine.dir/mining/fp_growth.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/fp_growth.cc.o.d"
  "/root/repo/src/mining/maximal.cc" "src/CMakeFiles/corrmine.dir/mining/maximal.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/maximal.cc.o.d"
  "/root/repo/src/mining/partition.cc" "src/CMakeFiles/corrmine.dir/mining/partition.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/partition.cc.o.d"
  "/root/repo/src/mining/pcy.cc" "src/CMakeFiles/corrmine.dir/mining/pcy.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/pcy.cc.o.d"
  "/root/repo/src/mining/rare_pairs.cc" "src/CMakeFiles/corrmine.dir/mining/rare_pairs.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/rare_pairs.cc.o.d"
  "/root/repo/src/mining/rule_measures.cc" "src/CMakeFiles/corrmine.dir/mining/rule_measures.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/rule_measures.cc.o.d"
  "/root/repo/src/mining/sampling.cc" "src/CMakeFiles/corrmine.dir/mining/sampling.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/mining/sampling.cc.o.d"
  "/root/repo/src/stats/bivariate_normal.cc" "src/CMakeFiles/corrmine.dir/stats/bivariate_normal.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/bivariate_normal.cc.o.d"
  "/root/repo/src/stats/categorical_table.cc" "src/CMakeFiles/corrmine.dir/stats/categorical_table.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/categorical_table.cc.o.d"
  "/root/repo/src/stats/chi_squared_distribution.cc" "src/CMakeFiles/corrmine.dir/stats/chi_squared_distribution.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/chi_squared_distribution.cc.o.d"
  "/root/repo/src/stats/fisher_exact.cc" "src/CMakeFiles/corrmine.dir/stats/fisher_exact.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/fisher_exact.cc.o.d"
  "/root/repo/src/stats/gamma.cc" "src/CMakeFiles/corrmine.dir/stats/gamma.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/gamma.cc.o.d"
  "/root/repo/src/stats/multiple_testing.cc" "src/CMakeFiles/corrmine.dir/stats/multiple_testing.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/multiple_testing.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/CMakeFiles/corrmine.dir/stats/normal.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/normal.cc.o.d"
  "/root/repo/src/stats/permutation_test.cc" "src/CMakeFiles/corrmine.dir/stats/permutation_test.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/permutation_test.cc.o.d"
  "/root/repo/src/stats/tetrachoric.cc" "src/CMakeFiles/corrmine.dir/stats/tetrachoric.cc.o" "gcc" "src/CMakeFiles/corrmine.dir/stats/tetrachoric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
