file(REMOVE_RECURSE
  "libcorrmine.a"
)
