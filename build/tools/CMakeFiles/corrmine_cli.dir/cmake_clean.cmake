file(REMOVE_RECURSE
  "CMakeFiles/corrmine_cli.dir/corrmine_cli.cc.o"
  "CMakeFiles/corrmine_cli.dir/corrmine_cli.cc.o.d"
  "corrmine_cli"
  "corrmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corrmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
