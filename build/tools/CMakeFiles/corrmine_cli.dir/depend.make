# Empty dependencies file for corrmine_cli.
# This may be replaced when dependencies are built.
